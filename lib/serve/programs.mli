(** Program cache: content-hash a request's lowered program to reuse the
    optimized IR and its analysis verdict across requests.

    The key is the digest of the naive program's emitted text (which is
    value-independent — coefficients appear by name, so a temperature
    sweep hashes identically) combined with the request's
    {!Finch.Solve_request.batch_key} (dimensions, step count, backend,
    optimizer level, evaluator).  A hit skips the per-request
    optimize-and-verify pipeline entirely; a miss runs
    [Finch_opt.Opt.optimize_problem] plus the
    [Finch_analysis.Driver.check_problem] gate once and memoizes both.
    Native-mode compiled objects are additionally reused one level down
    by the [finch_codegen] memo, whose occupancy {!codegen_programs}
    reports.

    Counters: [serve.program_hits] / [serve.program_misses]. *)

type entry = {
  key : string;  (** content hash; equal keys ⇒ co-batchable programs *)
  source : string;  (** emitted naive-program text the key derives from *)
  ir : Finch.Ir.node;  (** the optimized program *)
  stats : Finch_opt.Opt.stats;  (** accepted-rewrite counts *)
  rejected : int;  (** optimizer passes vetoed by the analyses *)
  analysis : Finch_analysis.Driver.report;  (** the verification verdict *)
}

val key_of :
  ?post_io:Finch.Dataflow.callback_io ->
  Finch.Solve_request.t ->
  Finch.prepared ->
  string
(** The cache key of a prepared request (no optimization is run). *)

val lookup :
  ?post_io:Finch.Dataflow.callback_io ->
  Finch.Solve_request.t ->
  Finch.prepared ->
  entry
(** Fetch or build the entry for a prepared request, bumping the
    hit/miss counters. *)

val check_uncached :
  ?post_io:Finch.Dataflow.callback_io ->
  Finch.Solve_request.t ->
  Finch.prepared ->
  entry
(** Run the optimize-and-verify pipeline without consulting or filling
    the cache (the unbatched baseline's per-request cost; no counters
    are touched). *)

val size : unit -> int
(** Number of cached programs. *)

val codegen_programs : unit -> int
(** Occupancy of the [finch_codegen] in-process memo — the compiled
    native objects reused under this cache. *)

val clear : unit -> unit
(** Drop all entries (counters are kept). *)
