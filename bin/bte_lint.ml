(* Lint driver: run the static IR analyses (Finch_analysis) over the
   generated programs of the shipped scenarios without solving anything.

     bte_lint                    -- lint every scenario x backend x overlap
     bte_lint --backend cells:4  -- restrict the backend matrix
     bte_lint --format json      -- machine-readable findings for CI diffs
     bte_lint --selftest         -- run the seeded-defect fixtures
     bte_lint --codes            -- print the error-code catalogue

   Exit status: 0 clean, 1 analysis errors (or a failed selftest),
   2 usage errors.  See docs/ANALYSIS.md for the pass catalogue. *)

open Cmdliner

let default_backends =
  [ "serial"; "threads:2"; "bands:2"; "cells:2"; "cells:4"; "hybrid:2x2";
    "gpu"; "gpu:a6000:2"; "gpu:a6000:2x2"; "gpu:a6000:2x4" ]

let backends_t =
  Arg.(
    value
    & opt_all string []
    & info [ "backend" ] ~docv:"SPEC"
        ~doc:
          "Backend spec to lint (repeatable): serial, threads:N, bands:N, \
           cells:N, hybrid:RxD or gpu[:NAME[:RANKS|:GxR]]. Default: a matrix \
           of all strategies.")

let scenario_t =
  Arg.(
    value
    & opt (enum [ "hotspot", `Hotspot; "corner", `Corner; "all", `All ]) `All
    & info [ "scenario" ] ~docv:"NAME"
        ~doc:"Scenario to lint: hotspot, corner or all.")

let opts_t =
  Arg.(
    value
    & opt (list string) [ "0"; "1"; "2" ]
    & info [ "opt" ] ~docv:"LEVELS"
        ~doc:
          "Comma-separated IR optimization levels to lint (default 0,1,2). \
           Every configuration is checked at each listed level — both the \
           program the builders generate at that level and the output of \
           the Finch_opt pass pipeline run on it.")

let codes_t =
  Arg.(
    value & flag
    & info [ "codes" ] ~doc:"Print the error-code catalogue and exit.")

let selftest_t =
  Arg.(
    value & flag
    & info [ "selftest" ]
        ~doc:
          "Run the analyzer over its seeded-defect fixtures and check each \
           reports exactly the expected codes.")

let ignore_t =
  Arg.(
    value
    & opt (list string) []
    & info [ "ignore" ] ~docv:"CODES"
        ~doc:"Comma-separated codes to suppress (e.g. A005,A006).")

let verbose_t =
  Arg.(
    value & flag
    & info [ "verbose"; "v" ] ~doc:"Also print per-configuration results \
                                    when clean.")

let format_t =
  Arg.(
    value
    & opt (enum [ "text", `Text; "json", `Json ]) `Text
    & info [ "format" ] ~docv:"FMT"
        ~doc:
          "Output format of the lint matrix: text (default) or json — one \
           object per configuration with its findings (code, severity, \
           title, variable, node path, detail), so CI can diff findings \
           instead of grepping text.")

let print_codes () =
  List.iter
    (fun c ->
      Printf.printf "%s  %-7s  %s\n" (Finch_analysis.Finding.id c)
        (Finch_analysis.Finding.severity_string
           (Finch_analysis.Finding.severity c))
        (Finch_analysis.Finding.title c))
    Finch_analysis.Finding.catalogue

let run_selftest () =
  let failures = ref 0 in
  List.iter
    (fun (f : Finch_analysis.Fixtures.fixture) ->
      let expect, found = Finch_analysis.Fixtures.check f in
      let s l =
        String.concat "," (List.map Finch_analysis.Finding.id l)
      in
      if expect = found then
        Printf.printf "ok   %-24s [%s]\n" f.Finch_analysis.Fixtures.fname
          (s found)
      else begin
        incr failures;
        Printf.printf "FAIL %-24s expected [%s] found [%s]\n"
          f.Finch_analysis.Fixtures.fname (s expect) (s found)
      end)
    Finch_analysis.Fixtures.all;
  Printf.printf "%d fixture%s, %d failure%s\n"
    (List.length Finch_analysis.Fixtures.all)
    (if List.length Finch_analysis.Fixtures.all = 1 then "" else "s")
    !failures
    (if !failures = 1 then "" else "s");
  !failures = 0

let scenarios_of = function
  | `Hotspot -> [ "hotspot" ]
  | `Corner -> [ "corner" ]
  | `All -> [ "hotspot"; "corner" ]

(* One matrix cell as a facade request: the scenario's own base
   dimensions (corner is 32x8) with the cell's backend / overlap /
   opt level.  [Finch.prepare] builds and configures the problem the
   same way a served request would. *)
let request_for sname tgt overlap level =
  let base =
    match Bte.Setup.base_of_scenario sname with
    | Some b -> b
    | None -> assert false
  in
  { (Bte.Setup.request_of_base base sname) with
    Finch.Solve_request.backend = tgt;
    overlap;
    opt_level = level }

let json_of_finding (f : Finch_analysis.Finding.t) =
  let open Finch.Json in
  Obj
    [ "code", Str (Finch_analysis.Finding.id f.Finch_analysis.Finding.code);
      "severity",
      Str
        (Finch_analysis.Finding.severity_string
           (Finch_analysis.Finding.severity f.Finch_analysis.Finding.code));
      "title", Str (Finch_analysis.Finding.title f.Finch_analysis.Finding.code);
      "var",
      (match f.Finch_analysis.Finding.var with
       | Some v -> Str v
       | None -> Null);
      "where", Str f.Finch_analysis.Finding.where;
      "detail", Str f.Finch_analysis.Finding.detail ]

let lint_matrix ~backends ~scenario ~opts ~ignore_codes ~verbose ~format =
  Bte.Setup.register_scenarios ();
  let backends = if backends = [] then default_backends else backends in
  let total_errors = ref 0 and total_warnings = ref 0 and configs = ref 0 in
  let json_configs = ref [] in
  List.iter
    (fun sname ->
      List.iter
        (fun spec ->
          match Finch.Config.target_of_string spec with
          | Error e ->
            Printf.eprintf "error: %s\n" e;
            exit 2
          | Ok tgt ->
            List.iter
              (fun overlap ->
                List.iter
                  (fun level ->
                    incr configs;
                    let req = request_for sname tgt overlap level in
                    let prep =
                      match Finch.prepare req with
                      | Ok prep -> prep
                      | Error e ->
                        Printf.eprintf "error: %s\n"
                          (Finch.Solve_error.to_string e);
                        exit 2
                    in
                    let p = prep.Finch.pr_problem in
                    let post_io = prep.Finch.pr_post_io in
                    let r =
                      Finch_analysis.Driver.check_problem ?post_io
                        ~ignore_codes p
                    in
                    (* also lint the optimizer pipeline's output: the
                       rewritten program must stay as clean as the input,
                       including its communication schedule *)
                    let opt_r =
                      let res =
                        Finch_opt.Opt.optimize_problem ?post_io p
                      in
                      let comm =
                        Option.map
                          (fun pl -> Finch_analysis.Comm.Elaborate pl)
                          (Finch_analysis.Comm.plan_of_problem p)
                      in
                      Finch_analysis.Driver.check_ir ?comm ~ignore_codes
                        (Finch_analysis.Ctx.of_problem ?post_io p)
                        res.Finch_opt.Opt.ir
                    in
                    total_errors :=
                      !total_errors + r.Finch_analysis.Driver.errors
                      + opt_r.Finch_analysis.Driver.errors;
                    total_warnings :=
                      !total_warnings + r.Finch_analysis.Driver.warnings
                      + opt_r.Finch_analysis.Driver.warnings;
                    match format with
                    | `Json ->
                      let open Finch.Json in
                      json_configs :=
                        Obj
                          [ "scenario", Str sname;
                            "backend", Str spec;
                            "overlap", Bool overlap;
                            "opt", Str (Finch.Config.opt_level_name level);
                            "errors",
                            Num
                              (float_of_int
                                 (r.Finch_analysis.Driver.errors
                                  + opt_r.Finch_analysis.Driver.errors));
                            "warnings",
                            Num
                              (float_of_int
                                 (r.Finch_analysis.Driver.warnings
                                  + opt_r.Finch_analysis.Driver.warnings));
                            "findings",
                            List
                              (List.map json_of_finding
                                 r.Finch_analysis.Driver.findings);
                            "optimized_findings",
                            List
                              (List.map json_of_finding
                                 opt_r.Finch_analysis.Driver.findings) ]
                        :: !json_configs
                    | `Text ->
                      let label =
                        Printf.sprintf "%s %s%s opt%s" sname spec
                          (if overlap then " +overlap" else "")
                          (Finch.Config.opt_level_name level)
                      in
                      if r.Finch_analysis.Driver.findings <> [] then begin
                        Printf.printf "%s:\n" label;
                        Finch_analysis.Driver.pp_report stdout r
                      end
                      else if opt_r.Finch_analysis.Driver.findings <> []
                      then begin
                        Printf.printf "%s (optimized IR):\n" label;
                        Finch_analysis.Driver.pp_report stdout opt_r
                      end
                      else if verbose then Printf.printf "%s: clean\n" label)
                  opts)
              [ false; true ])
        backends)
    (scenarios_of scenario);
  (match format with
   | `Json ->
     let open Finch.Json in
     print_endline
       (to_string ~indent:2
          (Obj
             [ "configs", List (List.rev !json_configs);
               "summary",
               Obj
                 [ "configs", Num (float_of_int !configs);
                   "errors", Num (float_of_int !total_errors);
                   "warnings", Num (float_of_int !total_warnings) ] ]))
   | `Text ->
     Printf.printf "linted %d configurations: %d error%s, %d warning%s\n"
       !configs !total_errors
       (if !total_errors = 1 then "" else "s")
       !total_warnings
       (if !total_warnings = 1 then "" else "s"));
  !total_errors = 0

let lint_cmd backends scenario opts codes selftest ignore verbose format =
  if codes then print_codes ()
  else begin
    let ignore_codes =
      List.map
        (fun s ->
          match Finch_analysis.Finding.of_id s with
          | Some c -> c
          | None ->
            Printf.eprintf "error: unknown code %s (see --codes)\n" s;
            exit 2)
        ignore
    in
    let opts =
      List.map
        (fun s ->
          match Finch.Config.opt_level_of_string s with
          | Ok l -> l
          | Error e ->
            Printf.eprintf "error: %s\n" e;
            exit 2)
        opts
    in
    let ok =
      if selftest then run_selftest ()
      else lint_matrix ~backends ~scenario ~opts ~ignore_codes ~verbose ~format
    in
    if not ok then exit 1
  end

let () =
  let term =
    Term.(
      const lint_cmd $ backends_t $ scenario_t $ opts_t $ codes_t $ selftest_t
      $ ignore_t $ verbose_t $ format_t)
  in
  let info =
    Cmd.info "bte_lint" ~version:"1.0"
      ~doc:
        "Static analysis of the generated BTE programs: well-formedness, \
         parallel races and data-movement coverage."
  in
  exit (Cmd.eval (Cmd.v info term))
