(* Solver-service benchmark driver.

     bte_serve                 -- temperature-sweep workload over both
                                  scenarios, batched vs unbatched, and a
                                  self-validated BENCH_serve.json
     bte_serve --requests 6 --backend gpu --opt 2

   The workload is kALDo-style: R requests per scenario differing only in
   the hot-spot temperature, so every request of a scenario shares one
   lowered program.  The unbatched pass runs them one by one with the
   program cache off (today's per-request pipeline: optimize, verify,
   solve).  The batched pass runs the scheduler with coalescing and the
   content-hash program cache on.  Results must be bit-identical; the
   emitted JSON carries requests/s and p50/p95 latency for both modes
   plus the serve.* counter deltas, and validates itself. *)

open Cmdliner

let requests_t =
  Arg.(
    value & opt int 6
    & info [ "requests" ] ~docv:"N"
        ~doc:"Temperature points per scenario in the sweep (default 6).")

let scenario_t =
  Arg.(
    value
    & opt (enum [ "hotspot", `Hotspot; "corner", `Corner; "both", `Both ])
        `Both
    & info [ "scenario" ] ~docv:"NAME"
        ~doc:"Scenario family to sweep: hotspot, corner or both.")

let backend_t =
  Arg.(
    value & opt string "gpu"
    & info [ "backend" ] ~docv:"SPEC"
        ~doc:
          "Backend every request runs on: serial, threads:N, bands:N, \
           cells:N, hybrid:RxD or gpu[:NAME]. Batched launches need the \
           single-device gpu target; other backends still share the \
           program cache.")

let opt_t =
  Arg.(
    value & opt string "2"
    & info [ "opt" ] ~docv:"LEVEL" ~doc:"IR optimization level: 0, 1 or 2.")

let eval_t =
  Arg.(
    value
    & opt
        (enum
           [ "closure", Finch.Config.Closure; "tape", Finch.Config.Tape;
             "native", Finch.Config.Native ])
        Finch.Config.Closure
    & info [ "eval" ] ~docv:"MODE"
        ~doc:"RHS evaluator: closure, tape or native.")

let nx_t =
  Arg.(value & opt int 12 & info [ "nx" ] ~docv:"N" ~doc:"Cells per side.")

let ndirs_t =
  Arg.(value & opt int 4 & info [ "dirs" ] ~docv:"N" ~doc:"Directions.")

let nbands_t =
  Arg.(value & opt int 4 & info [ "bands" ] ~docv:"N" ~doc:"LA bands.")

let nsteps_t =
  Arg.(value & opt int 6 & info [ "steps" ] ~docv:"N" ~doc:"Time steps.")

let max_batch_t =
  Arg.(
    value & opt int 8
    & info [ "batch" ] ~docv:"N"
        ~doc:"Coalescing window of the batched pass (default 8).")

let repeat_t =
  Arg.(
    value & opt int 3
    & info [ "repeat" ] ~docv:"K"
        ~doc:
          "Times each temperature point is requested (default 3) — service \
           traffic repeats queries, which is what the scenario-table reuse \
           pays off on.")

let json_t =
  Arg.(
    value & opt string "BENCH_serve.json"
    & info [ "json" ] ~docv:"PATH" ~doc:"Where to write the benchmark JSON.")

let trace_t =
  Arg.(
    value & opt (some string) None
    & info [ "trace" ] ~docv:"PATH"
        ~doc:"Also export a Chrome trace of the batched pass.")

(* The sweep: R temperature points per scenario, each requested K times
   (interleaved, like repeated service traffic).  Temperature is a
   value-only change, so one lowered program per scenario. *)
let sweep ~scenarios ~requests ~repeat ~nx ~ndirs ~nbands ~nsteps ~backend
    ~opt_level ~eval_mode =
  List.concat_map
    (fun rep ->
      List.concat_map
        (fun scenario ->
          let base = if scenario = "corner" then 150.0 else 350.0 in
          List.init requests (fun i ->
              let t_hot =
                base
                +. 25.0 *. float_of_int i /. float_of_int (max 1 (requests - 1))
              in
              Finch.Solve_request.make ~nx ~ny:nx ~ndirs ~nbands ~nsteps ~t_hot
                ~backend ~opt_level ~eval_mode
                ~label:(Printf.sprintf "%s@%.1fK#%d" scenario t_hot rep)
                scenario))
        scenarios)
    (List.init (max 1 repeat) (fun r -> r))

let percentile p xs =
  match xs with
  | [] -> 0.0
  | _ ->
    let a = Array.of_list xs in
    Array.sort compare a;
    let n = Array.length a in
    let idx = int_of_float (p *. float_of_int (n - 1)) in
    a.(min (n - 1) idx)

type pass = {
  label : string;
  wall_s : float;
  rps : float;
  p50_ms : float;
  p95_ms : float;
  completed : int;
  results : (string * Finch.Solve_result.t) list;  (* label -> result *)
}

let run_pass ~label ~max_batch ~use_cache ~batching reqs =
  let sched =
    Finch_serve.Scheduler.create ~max_batch ~use_cache ~batching
      ~post_io:Bte.Setup.post_io ()
  in
  let t0 = Unix.gettimeofday () in
  let outcomes = Finch_serve.Scheduler.run_all sched reqs in
  let wall_s = Unix.gettimeofday () -. t0 in
  let results =
    List.filter_map
      (fun (req, oc) ->
        match oc with
        | Finch_serve.Scheduler.Completed r ->
          Some
            ( (match req.Finch.Solve_request.label with
               | Some l -> l
               | None -> r.Finch.Solve_result.trace_id),
              r )
        | Finch_serve.Scheduler.Rejected reason ->
          Printf.eprintf "%s: request rejected: %s\n" label reason;
          None
        | Finch_serve.Scheduler.Timed_out by ->
          Printf.eprintf "%s: request timed out by %.3fs\n" label by;
          None)
      (List.combine reqs outcomes)
  in
  let latencies =
    List.map (fun (_, r) -> r.Finch.Solve_result.wall_s *. 1e3) results
  in
  { label;
    wall_s;
    rps = float_of_int (List.length results) /. wall_s;
    p50_ms = percentile 0.50 latencies;
    p95_ms = percentile 0.95 latencies;
    completed = List.length results;
    results }

let counter name = Prt.Metrics.value (Prt.Metrics.counter name)

let pass_json (p : pass) extra =
  Finch.Json.Obj
    ([ "wall_s", Finch.Json.Num p.wall_s;
       "requests_per_s", Finch.Json.Num p.rps;
       "p50_ms", Finch.Json.Num p.p50_ms;
       "p95_ms", Finch.Json.Num p.p95_ms;
       "completed", Finch.Json.Num (float_of_int p.completed) ]
     @ extra)

let serve_cmd requests repeat scenario backend opt eval_mode nx ndirs nbands
    nsteps max_batch json_path trace_path =
  Bte.Setup.register_scenarios ();
  Prt.Metrics.enable ();
  (match trace_path with Some _ -> Prt.Trace.enable () | None -> ());
  let backend =
    match Finch.Config.target_of_string backend with
    | Ok t -> t
    | Error e ->
      Printf.eprintf "error: bad backend spec: %s\n" e;
      exit 2
  in
  let opt_level =
    match Finch.Config.opt_level_of_string opt with
    | Ok l -> l
    | Error e ->
      Printf.eprintf "error: %s\n" e;
      exit 2
  in
  if eval_mode = Finch.Config.Native then
    Finch_codegen.Codegen.install ~post_io:Bte.Setup.post_io ();
  let scenarios =
    match scenario with
    | `Hotspot -> [ "hotspot" ]
    | `Corner -> [ "corner" ]
    | `Both -> [ "hotspot"; "corner" ]
  in
  let reqs =
    sweep ~scenarios ~requests ~repeat ~nx ~ndirs ~nbands ~nsteps ~backend
      ~opt_level ~eval_mode
  in
  Printf.printf "workload: %d requests (%s x %d temps x %d), %s\n%!"
    (List.length reqs)
    (String.concat "+" scenarios)
    requests repeat
    (Finch.Solve_request.summary (List.hd reqs));
  (* unbatched baseline: window of 1, cache off — every request pays the
     full optimize-and-verify pipeline, exactly today's entry points *)
  let unbatched =
    run_pass ~label:"unbatched" ~max_batch:1 ~use_cache:false ~batching:false
      reqs
  in
  Printf.printf "  %-10s %6.2f req/s  p50 %7.1f ms  p95 %7.1f ms\n%!"
    unbatched.label unbatched.rps unbatched.p50_ms unbatched.p95_ms;
  (* batched pass: coalescing + program cache *)
  let hits0 = counter "serve.program_hits" in
  let misses0 = counter "serve.program_misses" in
  let batches0 = counter "serve.batches" in
  let launches0 = counter "serve.batched_launches" in
  let batched =
    run_pass ~label:"batched" ~max_batch ~use_cache:true ~batching:true reqs
  in
  let hits = counter "serve.program_hits" - hits0 in
  let misses = counter "serve.program_misses" - misses0 in
  let batches = counter "serve.batches" - batches0 in
  let launches = counter "serve.batched_launches" - launches0 in
  Printf.printf
    "  %-10s %6.2f req/s  p50 %7.1f ms  p95 %7.1f ms  (hits %d, misses %d, \
     batches %d)\n%!"
    batched.label batched.rps batched.p50_ms batched.p95_ms hits misses
    batches;
  (* bit-identity: the batched pass must reproduce the unbatched results
     exactly, request by request *)
  let max_diff =
    List.fold_left
      (fun acc (lbl, (r : Finch.Solve_result.t)) ->
        match List.assoc_opt lbl batched.results with
        | Some rb ->
          Float.max acc
            (Fvm.Field.max_abs_diff r.Finch.Solve_result.solution
               rb.Finch.Solve_result.solution)
        | None -> Float.max acc infinity)
      0.0 unbatched.results
  in
  let all_completed =
    unbatched.completed = List.length reqs
    && batched.completed = List.length reqs
  in
  let validated =
    all_completed && max_diff = 0.0 && hits > 0
    && batched.rps > unbatched.rps
  in
  Printf.printf "  max |batched - unbatched| = %g;  %s\n%!" max_diff
    (if validated then "validated" else "VALIDATION FAILED");
  let j =
    Finch.Json.Obj
      [ "bench", Finch.Json.Str "serve";
        "scenarios", Finch.Json.List (List.map (fun s -> Finch.Json.Str s) scenarios);
        ( "request",
          Finch.Json.Obj
            [ "temps_per_scenario", Finch.Json.Num (float_of_int requests);
              "repeat", Finch.Json.Num (float_of_int repeat);
              "nx", Finch.Json.Num (float_of_int nx);
              "dirs", Finch.Json.Num (float_of_int ndirs);
              "bands", Finch.Json.Num (float_of_int nbands);
              "steps", Finch.Json.Num (float_of_int nsteps);
              "backend", Finch.Json.Str (Finch.Config.target_name backend);
              "opt", Finch.Json.Str (Finch.Config.opt_level_name opt_level);
              "eval", Finch.Json.Str (Finch.Config.eval_mode_name eval_mode) ] );
        "total_requests", Finch.Json.Num (float_of_int (List.length reqs));
        "max_batch", Finch.Json.Num (float_of_int max_batch);
        "unbatched", pass_json unbatched [];
        ( "batched",
          pass_json batched
            [ "program_hits", Finch.Json.Num (float_of_int hits);
              "program_misses", Finch.Json.Num (float_of_int misses);
              "batches", Finch.Json.Num (float_of_int batches);
              "batched_launches", Finch.Json.Num (float_of_int launches) ] );
        "max_abs_diff", Finch.Json.Num max_diff;
        ( "speedup",
          Finch.Json.Num
            (if unbatched.rps > 0.0 then batched.rps /. unbatched.rps else 0.0)
        );
        "validated", Finch.Json.Bool validated ]
  in
  let oc = open_out json_path in
  output_string oc (Finch.Json.to_string ~indent:2 j);
  output_string oc "\n";
  close_out oc;
  Printf.printf "wrote %s\n%!" json_path;
  (match trace_path with
   | Some p ->
     Prt.Trace.write_chrome p;
     Printf.printf "wrote %s\n%!" p
   | None -> ());
  if not validated then exit 1

let () =
  let term =
    Term.(
      const serve_cmd $ requests_t $ repeat_t $ scenario_t $ backend_t $ opt_t
      $ eval_t $ nx_t $ ndirs_t $ nbands_t $ nsteps_t $ max_batch_t $ json_t
      $ trace_t)
  in
  let info =
    Cmd.info "bte_serve" ~version:"1.0"
      ~doc:
        "Batched multi-request solver service benchmark: temperature sweeps \
         through the serve scheduler, batched vs unbatched, with a \
         self-validated BENCH_serve.json."
  in
  exit (Cmd.eval (Cmd.v info term))
