(* Command-line driver for the phonon-BTE solver.

     bte_sim run      -- solve a scenario and report the temperature field
     bte_sim model    -- print modelled paper-scale times for a strategy
     bte_sim codegen  -- show the DSL pipeline output (symbolic forms + code)

   See `bte_sim COMMAND --help` for options. *)

open Cmdliner

(* ---------- shared options ---------- *)

let nx_t =
  Arg.(value & opt int 24 & info [ "nx" ] ~docv:"N" ~doc:"Cells in x.")

let ny_t = Arg.(value & opt int 24 & info [ "ny" ] ~docv:"N" ~doc:"Cells in y.")

let ndirs_t =
  Arg.(value & opt int 8 & info [ "dirs" ] ~docv:"N" ~doc:"Discrete directions (even).")

let nbands_t =
  Arg.(value & opt int 8 & info [ "bands" ] ~docv:"N" ~doc:"LA frequency bands.")

let nsteps_t =
  Arg.(value & opt int 50 & info [ "steps" ] ~docv:"N" ~doc:"Time steps.")

let scenario_t =
  Arg.(
    value
    & opt (enum [ "hotspot", `Hotspot; "corner", `Corner ]) `Hotspot
    & info [ "scenario" ] ~docv:"NAME" ~doc:"Scenario: hotspot (Fig. 2) or corner (Fig. 10).")

let backend_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "backend" ] ~docv:"SPEC"
        ~doc:
          "Execution backend: serial, threads:N (persistent domain pool), \
           bands:N, cells:N, hybrid:RxD (R band ranks x D pool domains), \
           gpu[:NAME[:RANKS|:GxR]] (simulated device, default a6000), or \
           auto (the tuner searches backend x opt x overlap x grid and \
           picks the plan itself; see docs/TUNER.md). Case-insensitive.")

let target_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "target" ] ~docv:"SPEC"
        ~doc:
          "Deprecated alias for $(b,--backend); also accepts the legacy \
           hybrid:R:D spelling.")

let overlap_t =
  Arg.(
    value & flag
    & info [ "overlap" ]
        ~doc:
          "Overlap communication with interior computation: cells:N runs the \
           halo exchange nonblocking behind the interior sweep, gpu \
           double-buffers transfers on a second stream. A no-op for the \
           other backends (their steps have only collectives). Numerics are \
           bit-identical either way.")

let opt_t =
  Arg.(
    value & opt string "2"
    & info [ "opt" ] ~docv:"LEVEL"
        ~doc:
          "IR optimization level: 0 (naive generated program: one parallel \
           region per loop, one GPU kernel launch per band), 1 (loop and \
           step-pair fusion, dead-assign elimination, transfer coalescing) \
           or 2 (adds band-batched kernel launches and upload hoisting). \
           Results are bit-identical at every level; see docs/OPTIMIZER.md.")

let eval_mode_t =
  Arg.(
    value
    & opt
        (enum
           [ "tape", Finch.Config.Tape; "closure", Finch.Config.Closure;
             "native", Finch.Config.Native ])
        Finch.Config.Closure
    & info [ "eval" ] ~docv:"MODE"
        ~doc:
          "Right-hand-side evaluator: closure (plain closure tree, the \
           default), tape (register tape with CSE and invariant \
           hoisting; fewer executed ops, with per-evaluation cache \
           bookkeeping) or native (generated OCaml compiled to a shared \
           object and dynlinked, behind a content-hash cache; falls back \
           to closure with a warning when unavailable — see \
           docs/CODEGEN.md).")

let codegen_cache_dir_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "codegen-cache-dir" ] ~docv:"DIR"
        ~doc:
          "Directory for compiled native kernels (--eval native). \
           Defaults to $(b,FINCH_CODEGEN_CACHE_DIR) or _build/finch_cache \
           under the current directory.")

let explain_plan_t =
  Arg.(
    value & flag
    & info [ "explain-plan" ]
        ~doc:
          "Run the autotuner and dump its full candidate table — plan, \
           predicted cost, legality verdict and measured refinement if any \
           — before the solve. With a concrete $(b,--backend) the table is \
           informational and the requested backend still runs; with \
           $(b,--backend auto) the table explains the committed choice.")

let tune_measure_t =
  Arg.(
    value & opt int 0
    & info [ "tune-measure" ] ~docv:"STEPS"
        ~doc:
          "Refine the tuner's shortlist with measured calibration runs \
           clamped to $(docv) time steps on the real executors (0, the \
           default, trusts the cost model and stays deterministic).")

let tune_cache_dir_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "tune-cache-dir" ] ~docv:"DIR"
        ~doc:
          "Directory for memoized tuner decisions (--backend auto). \
           Defaults to $(b,FINCH_TUNE_CACHE_DIR) or _build/finch_tune \
           under the current directory.")

let csv_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"PATH" ~doc:"Write the temperature field as CSV.")

let paper_scale_t =
  Arg.(
    value & flag
    & info [ "paper-scale" ]
        ~doc:"Use the full 120x120 / 20-direction / 40-band configuration (slow).")

let trace_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"PATH"
        ~doc:
          "Record execution spans (steps, phases, pool workers, SPMD ranks, \
           GPU stream) and write a Chrome trace-event JSON file to $(docv); \
           open it at https://ui.perfetto.dev. See docs/OBSERVABILITY.md.")

let metrics_t =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Collect runtime counters (halo bytes, barrier waits, kernel \
           launches, ...) and print the registry after the solve.")

let no_check_t =
  Arg.(
    value & flag
    & info [ "no-check" ]
        ~doc:
          "Skip the static IR analysis that normally runs before the solve \
           (def-before-use, parallel races, data-movement coverage; see \
           docs/ANALYSIS.md). With the check on, analysis errors abort the \
           run with exit code 3.")

let sanitize_t =
  Arg.(
    value & flag
    & info [ "sanitize" ]
        ~doc:
          "Run with the runtime sanitizer: ghost regions are NaN-poisoned \
           after each commit and device buffers at allocation, so any read \
           of storage a missing exchange or upload failed to refresh is \
           counted ([sanitize.poison_reads]). Bit-identical results on \
           defect-free programs; exit code 4 if poison is detected.")

(* The canonical track model is declared up front so the exported trace
   always carries the main / pool-worker / SPMD-rank / GPU-stream rows,
   even when the chosen target exercises only some of them. *)
let declare_canonical_tracks () =
  ignore (Prt.Trace.worker 0);
  ignore (Prt.Trace.rank 0);
  ignore (Prt.Trace.stream 0)

let start_observability ~trace ~metrics =
  (match trace with
   | Some _ ->
     Prt.Trace.enable ();
     declare_canonical_tracks ()
   | None -> ());
  if metrics then Prt.Metrics.enable ()

let finish_observability ~trace ~metrics =
  (match trace with
   | Some path ->
     Prt.Trace.write_chrome path;
     Printf.printf "trace: %d events on %d tracks written to %s\n"
       (Prt.Trace.event_count ())
       (List.length (Prt.Trace.tracks ()))
       path
   | None -> ());
  if metrics then begin
    print_endline "metrics:";
    print_string (Prt.Metrics.dump_text ())
  end

(* ---------- run ---------- *)

(* [--backend] wins; [--target] is kept as a warn-once alias so existing
   scripts keep working. *)
let resolve_backend ~backend ~target =
  match backend, target with
  | Some spec, other ->
    if other <> None then
      prerr_endline "warning: both --backend and --target given; using --backend";
    spec
  | None, Some spec ->
    prerr_endline "warning: --target is deprecated; use --backend";
    spec
  | None, None -> "serial"

(* ---------- tuner plumbing shared by [run] and [request] ---------- *)

let verdict_text = function
  | Finch_tune.Tune.Scored -> "scored"
  | Finch_tune.Tune.Legal -> "legal"
  | Finch_tune.Tune.Rejected m -> "rejected: " ^ m
  | Finch_tune.Tune.Unpredictable m -> "unpredictable: " ^ m

let print_plan_table (d : Finch_tune.Tune.decision) =
  Printf.printf "tuner: %d candidate(s) scored (cache key %s)\n"
    (List.length d.Finch_tune.Tune.dc_candidates)
    d.Finch_tune.Tune.dc_key;
  Printf.printf "  %-44s %14s %14s  %s\n" "plan" "predicted [s]" "measured [s]"
    "verdict";
  List.iter
    (fun (c : Finch_tune.Tune.candidate) ->
      Printf.printf "  %-44s %14.4g %14s  %s%s\n"
        (Finch_tune.Plan.name c.Finch_tune.Tune.cd_plan)
        c.Finch_tune.Tune.cd_predicted_s
        (match c.Finch_tune.Tune.cd_measured_s with
         | Some m -> Printf.sprintf "%.4g" m
         | None -> "-")
        (verdict_text c.Finch_tune.Tune.cd_verdict)
        (if Finch_tune.Plan.equal c.Finch_tune.Tune.cd_plan
              d.Finch_tune.Tune.dc_plan
         then "  <- chosen"
         else ""))
    d.Finch_tune.Tune.dc_candidates

(* [--backend auto]: commit to the tuner's plan before preparing; with
   [--explain-plan] the (force-recomputed, so the table is populated)
   candidate ranking is printed either way, but a concrete backend is
   never overridden.  The tuner's own trial runs and the analysis gate
   inside it use the same post_io contract as the solve's gate. *)
let tune_request ~explain ~measure_steps (req : Finch.Solve_request.t) =
  let is_auto = req.Finch.Solve_request.backend = Finch.Config.Auto in
  if not (is_auto || explain) then req, None
  else
    match
      Finch_tune.Tune.plan ~post_io:Bte.Setup.post_io ~measure_steps
        ~force:explain req
    with
    | Error e ->
      Printf.eprintf "error: tuner: %s\n" e;
      exit 2
    | Ok d ->
      if explain then print_plan_table d;
      if is_auto then begin
        Printf.printf "tuner: plan %s (predicted %.4g s, %s)\n%!"
          (Finch_tune.Plan.name d.Finch_tune.Tune.dc_plan)
          d.Finch_tune.Tune.dc_predicted_s
          (match d.Finch_tune.Tune.dc_origin with
           | Finch_tune.Tune.Computed -> "computed"
           | Finch_tune.Tune.Memory_hit -> "memo hit"
           | Finch_tune.Tune.Disk_hit -> "disk cache hit");
        Finch_tune.Plan.apply d.Finch_tune.Tune.dc_plan req, Some d
      end
      else req, None

(* Post-solve reporting shared by [run] and [request]: tape statistics,
   temperature stats, phase breakdown, GPU perf model and optional CSV. *)
let report_result ~t_ambient ~csv (prep : Finch.prepared)
    (res : Finch.Solve_result.t) =
  Printf.printf "wall time %.2f s\n" res.Finch.Solve_result.wall_s;
  let outcome = res.Finch.Solve_result.outcome in
  (match outcome.Finch.Solve.states.(0).Finch.Lower.tapes with
   | [] -> ()
   | tapes ->
     List.iter
       (fun (name, t) ->
         let runs = Finch.Eval.tape_runs t in
         if runs > 0 then
           Printf.printf "tape %-6s: %3d ops, executed %.1f/run (%.0f%% skipped)\n"
             name (Finch.Eval.tape_length t)
             (float_of_int (Finch.Eval.tape_executed t) /. float_of_int runs)
             (100.
              *. (1.
                  -. float_of_int (Finch.Eval.tape_executed t)
                     /. float_of_int (runs * Finch.Eval.tape_length t))))
       tapes);
  let ft = res.Finch.Solve_result.solution in
  let mesh = Finch.Problem.mesh_exn prep.Finch.pr_problem in
  let stats = Bte.Diag.temperature_stats mesh ft ~t_ambient in
  Format.printf "%a@." Bte.Diag.pp_stats stats;
  Format.printf "breakdown: %a@." Prt.Breakdown.pp
    res.Finch.Solve_result.breakdown;
  (match outcome.Finch.Solve.gpu with
   | Some g ->
     print_endline
       (Gpu_sim.Perf.to_string
          (Gpu_sim.Perf.report g.Finch.Target_gpu.device
             ~avg_threads:g.Finch.Target_gpu.profile_threads))
   | None -> ());
  match csv with
  | Some path ->
    Bte.Diag.to_csv mesh ft ~comp:0 path;
    Printf.printf "temperature field written to %s\n" path
  | None -> ()

(* Static-analysis gate shared by [run] and [request]: errors abort with
   exit code 3 unless [no_check]. *)
let analysis_gate ~no_check (prep : Finch.prepared) =
  if not no_check then begin
    let report =
      Finch_analysis.Driver.check_problem ?post_io:prep.Finch.pr_post_io
        prep.Finch.pr_problem
    in
    if report.Finch_analysis.Driver.errors > 0 then begin
      Printf.eprintf "static analysis rejected the generated program:\n";
      Finch_analysis.Driver.pp_report stderr report;
      Printf.eprintf "(use --no-check to run anyway)\n";
      exit 3
    end
    else if report.Finch_analysis.Driver.warnings > 0 then begin
      print_endline "static analysis warnings:";
      Finch_analysis.Driver.pp_report stdout report
    end
  end

let print_optimizer_stats (prep : Finch.prepared)
    (opt_level : Finch.Config.opt_level) =
  let opt_result =
    Finch_opt.Opt.optimize_problem ?post_io:prep.Finch.pr_post_io
      prep.Finch.pr_problem
  in
  let os = opt_result.Finch_opt.Opt.stats in
  Printf.printf
    "optimizer: O%s — %d loop(s) fused, %d step pair(s) fused, %d kernel \
     launch loop(s) batched, %d dead assign(s) removed%s\n"
    (Finch.Config.opt_level_name opt_level)
    os.Finch_opt.Opt.loops_fused os.Finch_opt.Opt.steps_fused
    os.Finch_opt.Opt.kernels_batched os.Finch_opt.Opt.assigns_eliminated
    (match opt_result.Finch_opt.Opt.rejected with
     | [] -> ""
     | rs ->
       Printf.sprintf "; %d pass(es) rejected by the analyses (%s)"
         (List.length rs)
         (String.concat ", "
            (List.map
               (fun (r : Finch_opt.Opt.rejection) ->
                 r.Finch_opt.Opt.rej_pass ^ ":"
                 ^ Finch_analysis.Finding.id
                     r.Finch_opt.Opt.rej_finding.Finch_analysis.Finding.code)
               rs)))

let finish_sanitize ~sanitize () =
  if sanitize then begin
    let n = Finch_analysis.Sanitize.poison_reads () in
    Finch_analysis.Sanitize.disable ();
    Printf.printf "sanitizer: %d poison read%s\n" n (if n = 1 then "" else "s");
    if n > 0 then exit 4
  end

(* Prepare and solve one request through the facade with the shared
   gates and reporting around it.  Exit codes: 2 invalid request /
   unknown scenario, 3 analysis errors, 4 sanitizer poison, 1 engine
   failure. *)
let solve_request ?tune_decision ~t_ambient ~csv ~trace ~metrics ~no_check
    ~sanitize (req : Finch.Solve_request.t) =
  match Finch.prepare req with
  | Error e ->
    Printf.eprintf "error: %s\n" (Finch.Solve_error.to_string e);
    exit 2
  | Ok prep ->
    analysis_gate ~no_check prep;
    if sanitize then Finch_analysis.Sanitize.enable ();
    start_observability ~trace ~metrics;
    print_optimizer_stats prep req.Finch.Solve_request.opt_level;
    (match Finch.solve_prepared req prep with
     | Error e ->
       Printf.eprintf "error: %s\n" (Finch.Solve_error.to_string e);
       exit 1
     | Ok res ->
       (match tune_decision with
        | Some (d : Finch_tune.Tune.decision) ->
          let wall = res.Finch.Solve_result.wall_s in
          let predicted = d.Finch_tune.Tune.dc_predicted_s in
          Printf.printf
            "tuner: predicted %.4g s, measured %.4g s (model/measured %.2fx)\n"
            predicted wall
            (if wall > 0. then predicted /. wall else nan)
        | None -> ());
       report_result ~t_ambient ~csv prep res;
       finish_observability ~trace ~metrics;
       finish_sanitize ~sanitize ())

let run_cmd scenario nx ny ndirs nbands nsteps backend target overlap opt
    eval_mode codegen_cache_dir explain_plan tune_measure tune_cache_dir csv
    paper_scale trace metrics no_check sanitize =
  Bte.Setup.register_scenarios ();
  let opt_level =
    match Finch.Config.opt_level_of_string opt with
    | Ok l -> l
    | Error e ->
      Printf.eprintf "error: %s\n" e;
      exit 2
  in
  let tgt =
    match Finch.Config.target_of_string (resolve_backend ~backend ~target) with
    | Ok t -> t
    | Error e ->
      Printf.eprintf "error: %s\n" e;
      exit 2
  in
  let family =
    match scenario with `Hotspot -> "hotspot" | `Corner -> "corner"
  in
  let sname = if paper_scale then family ^ "-paper" else family in
  let base =
    match Bte.Setup.base_of_scenario sname with
    | Some b -> b
    | None -> assert false
  in
  (* the request is the whole configuration — scenario, dims, backend,
     optimizer, evaluator — in place of the old [Problem.set_*] wiring *)
  let req =
    let r =
      if paper_scale then Bte.Setup.request_of_base base sname
      else Finch.Solve_request.make ~nx ~ny ~ndirs ~nbands ~nsteps sname
    in
    { r with Finch.Solve_request.backend = tgt; opt_level; eval_mode; overlap }
  in
  let sc = Bte.Setup.scenario_of_request base req in
  let disp = Bte.Dispersion.make ~n_la:sc.Bte.Setup.n_la_bands in
  let dt = Float.min sc.Bte.Setup.dt (Bte.Setup.cfl_dt sc disp) in
  Printf.printf "scenario %s: %dx%d cells, %d dirs, %d bands, %d steps (dt %.3g s)\n%!"
    sc.Bte.Setup.sname sc.Bte.Setup.nx sc.Bte.Setup.ny sc.Bte.Setup.ndirs
    (Bte.Dispersion.nbands disp) sc.Bte.Setup.nsteps dt;
  (* the codegen backend is always installed; it only engages when the
     eval mode below is Native *)
  (match codegen_cache_dir with
   | Some d -> Finch_codegen.Codegen.set_cache_dir d
   | None -> ());
  Finch_codegen.Codegen.install ~post_io:Bte.Setup.post_io ();
  (match tune_cache_dir with
   | Some d -> Finch_tune.Tune.set_cache_dir d
   | None -> ());
  (* observability must be live before the tuner so its counters and
     spans (tune.cache_hits, tune:plan, ...) land in the report *)
  start_observability ~trace ~metrics;
  let req, tune_decision =
    tune_request ~explain:explain_plan ~measure_steps:tune_measure req
  in
  solve_request ?tune_decision ~t_ambient:sc.Bte.Setup.t_cold ~csv ~trace
    ~metrics ~no_check ~sanitize req

let run_term =
  Term.(
    const run_cmd $ scenario_t $ nx_t $ ny_t $ ndirs_t $ nbands_t $ nsteps_t
    $ backend_t $ target_t $ overlap_t $ opt_t $ eval_mode_t
    $ codegen_cache_dir_t $ explain_plan_t $ tune_measure_t $ tune_cache_dir_t
    $ csv_t $ paper_scale_t $ trace_t $ metrics_t $ no_check_t $ sanitize_t)

let run_info =
  Cmd.info "run" ~doc:"Solve a BTE scenario with a chosen execution backend."

(* ---------- model ---------- *)

let procs_t =
  Arg.(
    value
    & opt (list int) [ 1; 2; 5; 10; 20; 40; 55 ]
    & info [ "procs" ] ~docv:"LIST" ~doc:"Process counts to evaluate.")

let strategy_t =
  Arg.(
    value
    & opt
        (enum
           [ "bands", `Bands; "cells", `Cells; "threads", `Threads;
             "hybrid", `Hybrid; "gpu", `Gpu; "fortran", `Fortran ])
        `Bands
    & info [ "strategy" ] ~docv:"NAME"
        ~doc:"Strategy: bands, cells, threads, hybrid, gpu or fortran.")

let pool_t =
  Arg.(
    value & opt int 4
    & info [ "pool" ] ~docv:"N"
        ~doc:"Pool domains per rank for the hybrid strategy.")

let model_cmd strategy pool procs =
  Printf.printf "%-8s %12s %12s %14s %16s\n" "p" "total [s]" "intensity%"
    "temperature%" "communication%";
  List.iter
    (fun p ->
      let s =
        match strategy with
        | `Bands -> Bte.Perfmodel.Bands p
        | `Cells -> Bte.Perfmodel.Cells p
        | `Threads -> Bte.Perfmodel.Threads p
        | `Hybrid -> Bte.Perfmodel.Hybrid (p, pool)
        | `Gpu -> Bte.Perfmodel.Gpu p
        | `Fortran -> Bte.Perfmodel.Fortran p
      in
      match Bte.Perfmodel.run_breakdown s with
      | b ->
        let pc = Prt.Breakdown.percentages b in
        Printf.printf "%-8d %12.1f %11.1f%% %13.1f%% %15.1f%%\n" p
          (Prt.Breakdown.total b) pc.Prt.Breakdown.pct_intensity
          pc.Prt.Breakdown.pct_temperature pc.Prt.Breakdown.pct_communication
      | exception Invalid_argument m -> Printf.printf "%-8d %s\n" p m)
    procs

let model_term = Term.(const model_cmd $ strategy_t $ pool_t $ procs_t)

let model_info =
  Cmd.info "model"
    ~doc:"Print modelled paper-scale execution times for a parallel strategy."

(* ---------- codegen ---------- *)

let equation_t =
  Arg.(
    value
    & opt string "-k*u - surface(upwind([bx;by], u))"
    & info [ "equation" ] ~docv:"EXPR" ~doc:"Conservation-form input expression.")

let cuda_t = Arg.(value & flag & info [ "cuda" ] ~doc:"Emit the CUDA-like hybrid code.")

let codegen_cmd equation cuda =
  let p = Finch.Problem.init "codegen" in
  Finch.Problem.domain p 2;
  Finch.Problem.set_mesh p (Fvm.Mesh_gen.rectangle ~nx:4 ~ny:4 ~lx:1. ~ly:1. ());
  Finch.Problem.set_steps p ~dt:1e-3 ~nsteps:1;
  let u = Finch.Problem.variable p ~name:"u" () in
  List.iter
    (fun name ->
      ignore (Finch.Problem.coefficient p ~name (Finch.Entity.Const 1.)))
    [ "k"; "bx"; "by" ];
  Finch.Problem.initial p u (Finch.Problem.Init_const 0.);
  let eq = Finch.Problem.conservation_form p u equation in
  print_endline "=== expanded symbolic representation ===";
  print_endline (Finch.Transform.report_expanded eq);
  print_endline "\n=== after forward-Euler transform ===";
  print_endline (Finch.Transform.report_stepped eq);
  print_endline "\n=== classified terms ===";
  print_endline (Finch.Transform.report_classified eq);
  if cuda then begin
    Finch.Problem.use_cuda p;
    let plan = Finch.Dataflow.plan_for_problem p in
    let transfers = Finch.Dataflow.ir_transfers plan in
    print_endline "\n=== generated hybrid CPU/GPU code (CUDA-like) ===";
    print_endline (Finch.Emit_source.to_cuda (Finch.Ir.build_gpu p ~transfers))
  end
  else begin
    print_endline "\n=== generated CPU code (Julia-like) ===";
    print_endline (Finch.Emit_source.to_julia (Finch.Ir.build_cpu p))
  end

let codegen_term = Term.(const codegen_cmd $ equation_t $ cuda_t)

let codegen_info =
  Cmd.info "codegen" ~doc:"Show the DSL pipeline output for an input equation."

(* ---------- material ---------- *)

let temps_t =
  Arg.(
    value
    & opt (list float) [ 100.; 200.; 300.; 400.; 500. ]
    & info [ "temps" ] ~docv:"LIST" ~doc:"Temperatures (K) to evaluate.")

let material_cmd temps =
  Printf.printf "%-8s %14s %18s %14s
" "T [K]" "k [W/(m K)]" "C [J/(m^3 K)]"
    "MFP [nm]";
  List.iter
    (fun t ->
      Printf.printf "%-8g %14.1f %18.3g %14.0f
" t (Bte.Conductivity.bulk t)
        (Bte.Conductivity.heat_capacity t)
        (1e9 *. Bte.Conductivity.mean_free_path t))
    temps;
  print_endline
    "(acoustic branches only; silicon's measured k(300K) = 148 W/(m K) —
    \ the ~100 nm room-temperature mean free path is why sub-micron devices
    \ need the BTE instead of Fourier's law)"

let material_term = Term.(const material_cmd $ temps_t)

let material_info =
  Cmd.info "material"
    ~doc:"Print kinetic-theory material properties of the phonon model."

(* ---------- film ---------- *)

let thicknesses_t =
  Arg.(
    value
    & opt (list float) [ 50e-9; 200e-9; 1e-6 ]
    & info [ "thicknesses" ] ~docv:"LIST" ~doc:"Film thicknesses in metres.")

let film_cmd thicknesses =
  let cfg =
    { Bte.Film.default_config with Bte.Film.ncells = 24; ndirs = 8;
      n_la_bands = 6; max_steps = 20_000 }
  in
  Printf.printf "%-14s %12s %12s %10s
" "thickness" "k_eff" "k_diffusive"
    "ratio";
  List.iter
    (fun l ->
      let r = Bte.Film.effective_conductivity ~cfg ~thickness:l () in
      Printf.printf "%-14s %12.1f %12.1f %10.3f
"
        (Printf.sprintf "%g nm" (1e9 *. l))
        r.Bte.Film.k_eff r.Bte.Film.k_bulk r.Bte.Film.ratio)
    thicknesses

let film_term = Term.(const film_cmd $ thicknesses_t)

let film_info =
  Cmd.info "film"
    ~doc:"Cross-plane thin-film conduction: the phonon size effect."

(* ---------- request ---------- *)

let request_json_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"JSON"
        ~doc:
          "Inline request JSON (see docs/SERVE.md for the schema); \
           mutually exclusive with $(b,--file).")

let request_file_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "file" ] ~docv:"PATH"
        ~doc:"Read the request JSON from $(docv) ($(b,-) for stdin).")

let read_all ic =
  let b = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel b ic 4096
     done
   with End_of_file -> ());
  Buffer.contents b

let request_cmd json file csv trace metrics no_check sanitize =
  Bte.Setup.register_scenarios ();
  let text =
    match json, file with
    | Some _, Some _ ->
      prerr_endline "error: give either --json or --file, not both";
      exit 2
    | Some s, None -> s
    | None, Some "-" -> read_all stdin
    | None, Some path ->
      let ic = open_in path in
      let s = read_all ic in
      close_in ic;
      s
    | None, None ->
      prerr_endline "error: a request is required (--json JSON or --file PATH)";
      exit 2
  in
  match Finch.Solve_request.of_string text with
  | Error e ->
    Printf.eprintf "error: bad request: %s\n" e;
    exit 2
  | Ok req ->
    Printf.printf "request: %s\n%!" (Finch.Solve_request.summary req);
    let t_ambient =
      (* background temperature for the diagnostics; prepare rejects
         unknown scenarios before this matters *)
      match Bte.Setup.base_of_scenario req.Finch.Solve_request.scenario with
      | Some base -> (Bte.Setup.scenario_of_request base req).Bte.Setup.t_cold
      | None -> 300.
    in
    Finch_codegen.Codegen.install ~post_io:Bte.Setup.post_io ();
    start_observability ~trace ~metrics;
    (* wire requests may also say "backend": "auto" — resolve exactly as
       the run subcommand does, model-only *)
    let req, tune_decision =
      tune_request ~explain:false ~measure_steps:0 req
    in
    solve_request ?tune_decision ~t_ambient ~csv ~trace ~metrics ~no_check
      ~sanitize req

let request_term =
  Term.(
    const request_cmd $ request_json_t $ request_file_t $ csv_t $ trace_t
    $ metrics_t $ no_check_t $ sanitize_t)

let request_info =
  Cmd.info "request"
    ~doc:
      "Solve one JSON-described request through the Finch facade (the same \
       record bte_serve queues; see docs/SERVE.md)."

(* ---------- main ---------- *)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info =
    Cmd.info "bte_sim" ~version:"1.0"
      ~doc:"Phonon Boltzmann transport with a PDE code-generation DSL."
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [ Cmd.v run_info run_term;
            Cmd.v request_info request_term;
            Cmd.v model_info model_term;
            Cmd.v codegen_info codegen_term;
            Cmd.v material_info material_term;
            Cmd.v film_info film_term ]))
