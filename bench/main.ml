(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (see DESIGN.md experiment index E1-E10).

   Usage:
     bench/main.exe            -- run every experiment (E1..E9 + headline)
     bench/main.exe e4 e6      -- run selected experiments
     bench/main.exe micro      -- bechamel micro-benchmarks of the kernels
     bench/main.exe tune       -- autotuner validation campaign (E14):
                                  hand-picked plans vs --backend auto,
                                  writes self-validated BENCH_tune.json
     bench/main.exe --measured -- also run reduced-scale *real* solves and
                                  report this machine's measured throughput
     bench/main.exe e11 --backend SPEC
                               -- add measured sync/overlap rows for any
                                  backend spec (serial|threads:N|bands:N|
                                  cells:N|hybrid:RxD|gpu[:NAME[:RANKS]])

   Paper-scale rows come from the calibrated analytic performance model
   (the cluster and GPUs of the paper are simulated; see DESIGN.md), so
   absolute seconds are modelled; the *shapes* — who wins, by what factor,
   where curves flatten — are the reproduction targets and are also
   asserted by test/test_perfmodel.ml. *)

let section title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "================================================================\n%!"

let row fmt = Printf.printf fmt

(* ------------------------------------------------------------------ *)
(* facade plumbing                                                      *)
(* ------------------------------------------------------------------ *)

(* Measured solves are described as [Finch.Solve_request.t] values and
   run through [Finch.prepare] / [Finch.solve_prepared] — the same path
   the CLI and the serve scheduler use.  Preparation (the scenario
   build) happens outside the timed window, as the old build-then-solve
   code did: [Solve_result.wall_s] covers only the solve. *)
let () = Bte.Setup.register_scenarios ()

let request_of ~scenario (sc : Bte.Setup.scenario) =
  { (Finch.Solve_request.make scenario) with
    Finch.Solve_request.nx = sc.Bte.Setup.nx;
    ny = sc.Bte.Setup.ny;
    ndirs = sc.Bte.Setup.ndirs;
    nbands = sc.Bte.Setup.n_la_bands;
    nsteps = sc.Bte.Setup.nsteps }

let gpu1 = Finch.Config.Gpu { spec = Gpu_sim.Spec.a6000; devices = 1; ranks = 1 }

let facade_solve req =
  match Finch.prepare req with
  | Error e -> failwith (Finch.Solve_error.to_string e)
  | Ok prep ->
    (match Finch.solve_prepared req prep with
     | Ok res -> prep, res
     | Error e -> failwith (Finch.Solve_error.to_string e))

(* ------------------------------------------------------------------ *)
(* E1 (Fig. 2): hot-spot temperature field                              *)
(* ------------------------------------------------------------------ *)

let e1 ~measured =
  section
    "E1 / Fig. 2 - temperature field around the hot spot (reduced-scale real solve)";
  let sc =
    { Bte.Setup.small_hotspot with Bte.Setup.nx = 32; ny = 32; nsteps = 120 }
  in
  let prep, res = facade_solve (request_of ~scenario:"hotspot" sc) in
  let ft = res.Finch.Solve_result.solution in
  let stats =
    Bte.Diag.temperature_stats (Finch.Problem.mesh_exn prep.Finch.pr_problem)
      ft ~t_ambient:sc.Bte.Setup.t_cold
  in
  let disp = Bte.Dispersion.make ~n_la:sc.Bte.Setup.n_la_bands in
  row "grid %dx%d, %d dirs, %d bands, %d steps of %.2g s (wall %.2f s)\n"
    sc.Bte.Setup.nx sc.Bte.Setup.ny sc.Bte.Setup.ndirs
    (Bte.Dispersion.nbands disp) sc.Bte.Setup.nsteps
    (Float.min sc.Bte.Setup.dt (Bte.Setup.cfl_dt sc disp))
    res.Finch.Solve_result.wall_s;
  Format.printf "%a@." Bte.Diag.pp_stats stats;
  let prof =
    Bte.Diag.profile_y ft ~nx:sc.Bte.Setup.nx ~ny:sc.Bte.Setup.ny
      ~i:(sc.Bte.Setup.nx / 2)
  in
  row "profile through the spot (cold wall -> hot wall):\n  ";
  Array.iteri (fun j t -> if j mod 4 = 0 then row "%.2f " t) prof;
  row "\n";
  ignore measured

(* ------------------------------------------------------------------ *)
(* E2 (Fig. 4): band- vs cell-parallel strong scaling                   *)
(* ------------------------------------------------------------------ *)

let e2 ~measured =
  section
    "E2 / Fig. 4 - band-parallel vs cell-parallel strong scaling (modelled, paper scale)";
  row "%-10s %14s %14s %14s\n" "processes" "bands [s]" "cells [s]" "ideal [s]";
  let t1 = Bte.Perfmodel.run_time Bte.Perfmodel.Serial in
  List.iter
    (fun p ->
      let bands =
        if p <= 55 then
          Printf.sprintf "%14.1f" (Bte.Perfmodel.run_time (Bte.Perfmodel.Bands p))
        else Printf.sprintf "%14s" "-"
      in
      row "%-10d %s %14.1f %14.1f\n" p bands
        (Bte.Perfmodel.run_time (Bte.Perfmodel.Cells p))
        (t1 /. float_of_int p))
    [ 1; 2; 5; 10; 20; 40; 55; 80; 160; 320 ];
  row "(bands cap at 55 partitions; cells scale to 320, as in the paper)\n";
  if measured then begin
    let sc =
      { Bte.Setup.small_hotspot with Bte.Setup.nx = 16; ny = 16; nsteps = 10 }
    in
    row "\nmeasured (reduced scale %dx%d, real SPMD executors):\n" sc.Bte.Setup.nx
      sc.Bte.Setup.ny;
    List.iter
      (fun (name, target) ->
        let _, res =
          facade_solve
            { (request_of ~scenario:"hotspot" sc) with
              Finch.Solve_request.backend = target }
        in
        row "  %-12s %.3f s\n" name res.Finch.Solve_result.wall_s)
      [ "serial", Finch.Config.Cpu Finch.Config.Serial;
        "bands(4)", Finch.Config.Cpu (Finch.Config.Band_parallel 4);
        "cells(4)", Finch.Config.Cpu (Finch.Config.Cell_parallel 4) ]
  end

(* ------------------------------------------------------------------ *)
(* E3 (Fig. 5): execution-time breakdown, band-parallel                 *)
(* ------------------------------------------------------------------ *)

let breakdown_table title strategies =
  section title;
  row "%-14s %12s %14s %16s %12s\n" "processes" "intensity" "temperature"
    "communication" "total [s]";
  List.iter
    (fun (label, strategy) ->
      let b = Bte.Perfmodel.run_breakdown strategy in
      let p = Prt.Breakdown.percentages b in
      row "%-14s %11.1f%% %13.1f%% %15.1f%% %12.1f\n" label
        p.Prt.Breakdown.pct_intensity p.Prt.Breakdown.pct_temperature
        p.Prt.Breakdown.pct_communication (Prt.Breakdown.total b))
    strategies

let e3 ~measured =
  ignore measured;
  breakdown_table
    "E3 / Fig. 5 - execution-time breakdown, band-parallel strategy (modelled)"
    (List.map
       (fun p ->
         ( string_of_int p,
           if p = 1 then Bte.Perfmodel.Serial else Bte.Perfmodel.Bands p ))
       [ 1; 5; 10; 20; 40; 55 ]);
  row "(paper: intensity ~97%% at p=1, ~73%% at p=55)\n"

(* ------------------------------------------------------------------ *)
(* E4 (Fig. 7): CPU+GPU vs CPU-only scaling                             *)
(* ------------------------------------------------------------------ *)

let e4 ~measured =
  section
    "E4 / Fig. 7 - GPU-accelerated vs CPU-only scaling (modelled, paper scale)";
  row "%-10s %16s %16s %12s\n" "p (=GPUs)" "CPU only [s]" "CPU+GPU [s]" "speedup";
  List.iter
    (fun p ->
      let cpu =
        Bte.Perfmodel.run_time
          (if p = 1 then Bte.Perfmodel.Serial else Bte.Perfmodel.Bands p)
      in
      let gpu = Bte.Perfmodel.run_time (Bte.Perfmodel.Gpu p) in
      row "%-10d %16.1f %16.1f %11.1fx\n" p cpu gpu (cpu /. gpu))
    [ 1; 2; 5; 10; 20; 40; 55 ];
  let headline = Bte.Perfmodel.gpu_speedup ~p:1 () in
  row "\nE9 headline: GPU version vs equal-partition CPU version: %.1fx (paper: ~18x)\n"
    headline;
  row
    "best 20-core CPU-only: %.1f s vs 1 core + 1 GPU: %.1f s (paper: CPU-20 slightly slower)\n"
    (Bte.Perfmodel.run_time (Bte.Perfmodel.Cells 20))
    (Bte.Perfmodel.run_time (Bte.Perfmodel.Gpu 1));
  if measured then begin
    let sc =
      { Bte.Setup.small_hotspot with Bte.Setup.nx = 16; ny = 16; nsteps = 10 }
    in
    row "\nmeasured (reduced scale, simulated devices execute for real):\n";
    List.iter
      (fun ranks ->
        let _, res =
          facade_solve
            { (request_of ~scenario:"hotspot" sc) with
              Finch.Solve_request.backend =
                Finch.Config.Gpu
                  { spec = Gpu_sim.Spec.a6000; devices = 1; ranks } }
        in
        row "  %d device(s): wall %.3f s; modelled kernel time %.5f s\n" ranks
          res.Finch.Solve_result.wall_s
          (match res.Finch.Solve_result.outcome.Finch.Solve.gpu with
           | Some g -> g.Finch.Target_gpu.device.Gpu_sim.Memory.kernel_time
           | None -> 0.))
      [ 1; 2; 4 ]
  end

(* ------------------------------------------------------------------ *)
(* E5 (Fig. 8): GPU-version breakdown                                   *)
(* ------------------------------------------------------------------ *)

let e5 ~measured =
  ignore measured;
  breakdown_table
    "E5 / Fig. 8 - execution-time breakdown, GPU-accelerated version (modelled)"
    (List.map (fun g -> string_of_int g, Bte.Perfmodel.Gpu g) [ 1; 2; 4; 8 ]);
  row
    "(paper: temperature update takes a substantially larger share than on CPU;\n\
    \ communication between GPU and host is not significant)\n"

(* ------------------------------------------------------------------ *)
(* E6 (Sec. III-D table): kernel profiling metrics                      *)
(* ------------------------------------------------------------------ *)

let e6 ~measured =
  section "E6 / Sec. III-D - profiling the intensity kernel on one A6000";
  let sm, mem, flop = Bte.Perfmodel.gpu_profile () in
  row "%-22s | %-8s | %s\n" "metric" "model" "paper";
  row "%-22s | %6.0f%%  | 86%%\n" "SM utilization" (100. *. sm);
  row "%-22s | %6.0f%%  | 11%%\n" "memory throughput" (100. *. mem);
  row "%-22s | %6.0f%%  | 49%% of peak\n" "FLOP performance" (100. *. flop);
  if measured then begin
    let sc =
      { Bte.Setup.small_hotspot with Bte.Setup.nx = 16; ny = 16; nsteps = 5 }
    in
    let _, res =
      facade_solve
        { (request_of ~scenario:"hotspot" sc) with
          Finch.Solve_request.backend = gpu1 }
    in
    match res.Finch.Solve_result.outcome.Finch.Solve.gpu with
    | Some g ->
      let r =
        Gpu_sim.Perf.report g.Finch.Target_gpu.device
          ~avg_threads:g.Finch.Target_gpu.profile_threads
      in
      row "\nexecuted (reduced grid => lower occupancy):\n%s\n"
        (Gpu_sim.Perf.to_string r)
    | None -> ()
  end

(* ------------------------------------------------------------------ *)
(* E7 (Fig. 9): every strategy + the Fortran reference                  *)
(* ------------------------------------------------------------------ *)

let e7 ~measured =
  section "E7 / Fig. 9 - all strategies and the hand-written reference (modelled)";
  row "%-10s %12s %12s %12s %12s\n" "p" "bands [s]" "cells [s]" "GPU [s]"
    "Fortran [s]";
  List.iter
    (fun p ->
      let cell = function
        | Some v -> Printf.sprintf "%12.1f" v
        | None -> Printf.sprintf "%12s" "-"
      in
      let if55 s = if p <= 55 then Some (Bte.Perfmodel.run_time s) else None in
      row "%-10d %s %s %s %s\n" p
        (cell (if55 (Bte.Perfmodel.Bands p)))
        (cell (Some (Bte.Perfmodel.run_time (Bte.Perfmodel.Cells p))))
        (cell (if55 (Bte.Perfmodel.Gpu p)))
        (cell (if55 (Bte.Perfmodel.Fortran p))))
    [ 1; 2; 5; 10; 20; 40; 80; 160; 320 ];
  row
    "(paper: Fortran ~2x faster sequentially but scales worse; best times of\n\
    \ the 10-GPU run and the 320-process CPU run are roughly equal:\n\
    \ GPU(10) = %.1f s vs cells(320) = %.1f s)\n"
    (Bte.Perfmodel.run_time (Bte.Perfmodel.Gpu 10))
    (Bte.Perfmodel.run_time (Bte.Perfmodel.Cells 320));
  if measured then begin
    let sc =
      { Bte.Setup.small_hotspot with Bte.Setup.nx = 20; ny = 20; nsteps = 10 }
    in
    let _, res = facade_solve (request_of ~scenario:"hotspot" sc) in
    let t_dsl = res.Finch.Solve_result.wall_s in
    let r = Bte.Reference.create sc in
    let t0 = Unix.gettimeofday () in
    Bte.Reference.run r ~nsteps:sc.Bte.Setup.nsteps;
    let t_ref = Unix.gettimeofday () -. t0 in
    row
      "\nmeasured on this machine (reduced scale): DSL %.3f s, hand-written %.3f s (%.1fx)\n"
      t_dsl t_ref (t_dsl /. t_ref)
  end

(* ------------------------------------------------------------------ *)
(* E8 (Fig. 10): corner heat source in an elongated domain              *)
(* ------------------------------------------------------------------ *)

let e8 ~measured =
  ignore measured;
  section
    "E8 / Fig. 10 - corner heat source, elongated domain (reduced-scale real solve)";
  let sc =
    { Bte.Setup.small_corner with Bte.Setup.nx = 48; ny = 12; nsteps = 120 }
  in
  let prep, res = facade_solve (request_of ~scenario:"corner" sc) in
  let ft = res.Finch.Solve_result.solution in
  let stats =
    Bte.Diag.temperature_stats (Finch.Problem.mesh_exn prep.Finch.pr_problem)
      ft ~t_ambient:sc.Bte.Setup.t_cold
  in
  Format.printf "%a@." Bte.Diag.pp_stats stats;
  row "temperature along the top wall (source corner -> far end):\n  ";
  let prof = Bte.Diag.profile_x ft ~nx:sc.Bte.Setup.nx ~j:(sc.Bte.Setup.ny - 1) in
  Array.iteri (fun i t -> if i mod 6 = 0 then row "%.1f " t) prof;
  row "\n(paper: T in [100, 150] K, heat spreading from the corner)\n"

(* ------------------------------------------------------------------ *)
(* E11: execution engines — persistent pool vs respawn, tape vs closure *)
(* ------------------------------------------------------------------ *)

(* all rows are real reduced-scale solves on this machine; small steps and
   many of them, so per-step runtime overhead (the respawn executor's
   Domain.spawn/join churn) is resolvable against the sweep work *)
let e11_scenario =
  { Bte.Setup.small_hotspot with
    Bte.Setup.nx = 8; ny = 8; ndirs = 4; n_la_bands = 4; nsteps = 200 }

let e11_rows () =
  let sc = e11_scenario in
  let ndomains = 4 in
  (* every executor row uses the default (closure) evaluator so the rows
     differ only in runtime; the explicit tape row isolates the evaluator *)
  let req_with ?(eval = Finch.Config.Closure) ?(overlap = false) target =
    { (request_of ~scenario:"hotspot" sc) with
      Finch.Solve_request.backend = target;
      eval_mode = eval;
      overlap }
  in
  let solve_with ?eval ?overlap target =
    let _, res = facade_solve (req_with ?eval ?overlap target) in
    res.Finch.Solve_result.wall_s, res.Finch.Solve_result.outcome
  in
  let t_serial_closure, o_serial_closure =
    solve_with (Finch.Config.Cpu Finch.Config.Serial)
  in
  let t_serial, _ =
    solve_with ~eval:Finch.Config.Tape (Finch.Config.Cpu Finch.Config.Serial)
  in
  (* generated-code evaluator: same serial solve through the compiled
     kernel (warm cache after the first solve of the process) *)
  let t_serial_native, o_serial_native =
    solve_with ~eval:Finch.Config.Native (Finch.Config.Cpu Finch.Config.Serial)
  in
  (* intensity-phase (sweep) seconds isolate the evaluator from the
     temperature host callback, which every evaluator shares *)
  let sweep_closure_s =
    o_serial_closure.Finch.Solve.breakdown.Prt.Breakdown.intensity
  in
  let sweep_native_s =
    o_serial_native.Finch.Solve.breakdown.Prt.Breakdown.intensity
  in
  (* the respawn executor bypasses [Solve.solve] by design (it is the
     baseline the pool is measured against), so it keeps a raw build *)
  let t_respawn =
    let built = Bte.Setup.build sc in
    let t0 = Unix.gettimeofday () in
    ignore
      (Finch.Target_cpu.run_threaded_respawn built.Bte.Setup.problem ~ndomains);
    Unix.gettimeofday () -. t0
  in
  let t_pool, _ =
    solve_with (Finch.Config.Cpu (Finch.Config.Threaded ndomains))
  in
  let t_pool_native, _ =
    solve_with ~eval:Finch.Config.Native
      (Finch.Config.Cpu (Finch.Config.Threaded ndomains))
  in
  let t_hybrid, _ =
    solve_with (Finch.Config.Cpu (Finch.Config.Hybrid (2, 2)))
  in
  (* the mesh-partitioned executor: exercises the halo-exchange path, so a
     metrics-enabled bench run reports real halo traffic *)
  let t_cells, _ =
    solve_with (Finch.Config.Cpu (Finch.Config.Cell_parallel 2))
  in
  (* same partitioned solve with the nonblocking exchange behind the
     interior sweep — numerically bit-identical (asserted by the tests) *)
  let t_cells_ov, _ =
    solve_with ~overlap:true (Finch.Config.Cpu (Finch.Config.Cell_parallel 2))
  in
  (* the hybrid CPU/GPU executor on the simulated device *)
  let t_gpu, _ = solve_with gpu1 in
  (* tape statistics from a solve whose primary state does the sweeping
     (under the pool executors the workers hold the hot tapes) *)
  let tape_stats =
    let _, o =
      solve_with ~eval:Finch.Config.Tape (Finch.Config.Cpu Finch.Config.Serial)
    in
    let st = o.Finch.Solve.states.(0) in
    List.map
      (fun (name, t) ->
        let expr =
          match name with
          | "rvol" -> st.Finch.Lower.eq.Finch.Transform.rvol
          | _ -> st.Finch.Lower.eq.Finch.Transform.rsurf
        in
        let tree = Finch.Eval.cost expr in
        let tape_c = Finch.Eval.tape_cost t in
        ( name,
          Finch.Eval.tape_length t,
          Finch.Eval.tape_runs t,
          Finch.Eval.tape_executed t,
          tree.Finch.Eval.flops,
          tape_c.Finch.Eval.flops ))
      st.Finch.Lower.tapes
  in
  ( t_serial, t_serial_closure, t_serial_native, t_respawn, t_pool,
    t_pool_native, t_hybrid, t_cells, t_cells_ov, t_gpu, ndomains,
    (sweep_closure_s, sweep_native_s) ),
  tape_stats

(* per-step runtime overhead of each serial evaluator across mesh sizes:
   wall seconds divided by nsteps, so the fixed per-step cost (schedule
   dispatch, and for native the one-off compile amortised away by the
   cache) is visible against the sweep work as the mesh grows *)
let e11_per_step () =
  List.map
    (fun (nx, nsteps) ->
      let sc =
        { Bte.Setup.small_hotspot with
          Bte.Setup.nx; ny = nx; ndirs = 4; n_la_bands = 4; nsteps }
      in
      let wall eval =
        let _, res =
          facade_solve
            { (request_of ~scenario:"hotspot" sc) with
              Finch.Solve_request.eval_mode = eval }
        in
        res.Finch.Solve_result.wall_s
      in
      let tc = wall Finch.Config.Closure in
      let tn = wall Finch.Config.Native in
      ( nx, nsteps,
        tc /. float_of_int nsteps,
        tn /. float_of_int nsteps ))
    [ 8, 200; 16, 100; 32, 40 ]

(* --opt variants: the same serial / pool / gpu solves with the optimizer
   level pinned, each with the runtime-counter deltas it produced (pool
   regions and barrier waits for the threaded rows, kernel launches for
   the gpu rows; zero when the metrics registry is disabled) *)
type e11_variant = {
  v_label : string;
  v_wall : float;
  v_regions : int;
  v_waits : int;
  v_wait_ns : float;
  v_launches : int;
  v_compile_ns : int;
    (* codegen.compile_ns delta of the variant's first (cold) solve:
       the one-off native compile, reported separately so it never
       pollutes the best-of wall times *)
}

let e11_opt_variants () =
  let sc = e11_scenario in
  let ndomains = 4 in
  let cval name = Prt.Metrics.value (Prt.Metrics.counter name) in
  let bw () = Prt.Metrics.histogram "pool.barrier_wait_ns" in
  let run label eval level target =
    let req =
      { (request_of ~scenario:"hotspot" sc) with
        Finch.Solve_request.eval_mode = eval;
        opt_level = level;
        backend =
          (match target with
           | `Cpu strategy -> Finch.Config.Cpu strategy
           | `Gpu -> gpu1) }
    in
    (* preparation outside the counter window, as the old build was *)
    let prep =
      match Finch.prepare req with
      | Ok prep -> prep
      | Error e -> failwith (Finch.Solve_error.to_string e)
    in
    let r0 = cval "pool.regions" in
    let w0 = Prt.Metrics.hist_count (bw ()) in
    let n0 = Prt.Metrics.hist_sum (bw ()) in
    let l0 = cval "gpu.kernel_launches" in
    let k0 = cval "codegen.compile_ns" in
    let res =
      match Finch.solve_prepared req prep with
      | Ok res -> res
      | Error e -> failwith (Finch.Solve_error.to_string e)
    in
    {
      v_label = label;
      v_wall = res.Finch.Solve_result.wall_s;
      v_regions = cval "pool.regions" - r0;
      v_waits = Prt.Metrics.hist_count (bw ()) - w0;
      v_wait_ns = Prt.Metrics.hist_sum (bw ()) -. n0;
      v_launches = cval "gpu.kernel_launches" - l0;
      v_compile_ns = cval "codegen.compile_ns" - k0;
    }
  in
  let closure = Finch.Config.Closure and native = Finch.Config.Native in
  let specs =
    [
      "serial_opt0", closure, Finch.Config.O0, `Cpu Finch.Config.Serial;
      "serial_opt2", closure, Finch.Config.O2, `Cpu Finch.Config.Serial;
      ( "serial_native_opt0", native, Finch.Config.O0,
        `Cpu Finch.Config.Serial );
      ( "serial_native_opt2", native, Finch.Config.O2,
        `Cpu Finch.Config.Serial );
      ( "threaded_pool_opt0", closure, Finch.Config.O0,
        `Cpu (Finch.Config.Threaded ndomains) );
      ( "threaded_pool_opt1", closure, Finch.Config.O1,
        `Cpu (Finch.Config.Threaded ndomains) );
      ( "threaded_pool_opt2", closure, Finch.Config.O2,
        `Cpu (Finch.Config.Threaded ndomains) );
      ( "threaded_pool_native_opt2", native, Finch.Config.O2,
        `Cpu (Finch.Config.Threaded ndomains) );
      "gpu_opt0", closure, Finch.Config.O0, `Gpu;
      "gpu_opt2", closure, Finch.Config.O2, `Gpu;
    ]
  in
  (* wall times are best-of-5 over warm rounds only: the first round
     supplies the deterministic counter deltas and absorbs the one-off
     native compile (kept apart as compile_ns), so a cold codegen cache
     never pollutes the timed rows.  Single solves at this scale see
     large scheduler noise, which would drown the schedule
     differences. *)
  let first = List.map (fun (l, ev, lv, t) -> run l ev lv t) specs in
  let warm = List.map (fun v -> { v with v_wall = infinity }) first in
  List.fold_left
    (fun acc _ ->
      List.map2
        (fun v (l, ev, lv, t) ->
          let again = run l ev lv t in
          { v with v_wall = min v.v_wall again.v_wall })
        acc specs)
    warm [ 1; 2; 3; 4; 5 ]

(* extra backend selected with `--backend SPEC` on the command line:
   measured sync vs overlap rows in E11 for any executor *)
let extra_backend : (string * Finch.Config.target) option ref = ref None

let e11_measure ?(overlap = false) target =
  let _, res =
    facade_solve
      { (request_of ~scenario:"hotspot" e11_scenario) with
        Finch.Solve_request.backend = target;
        overlap }
  in
  res.Finch.Solve_result.wall_s

let e11 ~measured =
  ignore measured;
  section
    "E11 - execution engines: persistent domain pool and tape evaluator (measured)";
  let sc = e11_scenario in
  row "reduced scale %dx%d, %d dirs, %d steps; all rows real solves\n"
    sc.Bte.Setup.nx sc.Bte.Setup.ny sc.Bte.Setup.ndirs sc.Bte.Setup.nsteps;
  let (ts, tsc, tsn, tr, tp, tpn, th, tc, tcov, tg, nd, (swc, swn)), tapes =
    e11_rows ()
  in
  row "  %-28s %8.3f s\n" "serial (tape)" ts;
  row "  %-28s %8.3f s\n" "serial (closure)" tsc;
  row "  %-28s %8.3f s  (%.2fx vs closure)\n" "serial (native)" tsn (tsc /. tsn);
  row "  %-28s %8.3f s -> %.3f s  (%.2fx; temperature callback excluded)\n"
    "serial sweep phase" swc swn (swc /. swn);
  row "  %-28s %8.3f s\n" (Printf.sprintf "threads(%d) spawn-per-step" nd) tr;
  row "  %-28s %8.3f s  (%.2fx vs respawn)\n"
    (Printf.sprintf "threads(%d) persistent pool" nd)
    tp (tr /. tp);
  row "  %-28s %8.3f s\n"
    (Printf.sprintf "threads(%d) pool, native" nd)
    tpn;
  row "  %-28s %8.3f s\n" "hybrid 2 ranks x 2 threads" th;
  row "  %-28s %8.3f s\n" "cells(2) SPMD + halo" tc;
  row "  %-28s %8.3f s  (bit-identical result)\n" "cells(2) overlap exchange"
    tcov;
  row "  %-28s %8.3f s\n" "gpu (simulated a6000)" tg;
  row "\n  per-step overhead, serial closure vs native (wall_s / nsteps):\n";
  List.iter
    (fun (nx, nsteps, psc, psn) ->
      row "  %-28s %8.5f s closure  %8.5f s native  (%.2fx, %d steps)\n"
        (Printf.sprintf "%dx%d grid" nx nx)
        psc psn (psc /. psn) nsteps)
    (e11_per_step ());
  row
    "\n  --opt variants (optimizer level pinned, bit-identical results; \
     wall is best-of-5 warm, compile is the one-off cold build):\n";
  List.iter
    (fun v ->
      let compile =
        if v.v_compile_ns > 0 then
          Printf.sprintf "  +%.3f s compile" (float_of_int v.v_compile_ns *. 1e-9)
        else ""
      in
      if Prt.Metrics.enabled () then
        row "  %-28s %8.3f s  (regions %d, barrier waits %d, launches %d)%s\n"
          v.v_label v.v_wall v.v_regions v.v_waits v.v_launches compile
      else row "  %-28s %8.3f s%s\n" v.v_label v.v_wall compile)
    (e11_opt_variants ());
  (match !extra_backend with
   | Some (spec, tgt) ->
     let t_sync = e11_measure tgt in
     let t_ov = e11_measure ~overlap:true tgt in
     row "  %-28s %8.3f s\n" (Printf.sprintf "%s (--backend)" spec) t_sync;
     row "  %-28s %8.3f s  (overlap on)\n"
       (Printf.sprintf "%s (--backend)" spec)
       t_ov
   | None -> ());
  let om = Bte.Perfmodel.cells_overlap ~p:20 () in
  row
    "  modelled paper-scale cells(20): step %.3f s sync -> %.3f s overlapped \
     (%.3f s of exchange hidden)\n"
    om.Bte.Perfmodel.sync_step om.Bte.Perfmodel.overlap_step
    om.Bte.Perfmodel.hidden;
  List.iter
    (fun (name, len, runs, exec, tree_flops, tape_flops) ->
      let per_run = float_of_int exec /. float_of_int (max 1 runs) in
      row
        "  tape %-6s %3d ops (tree %.0f flops -> tape %.0f), executed %.1f/run \
         (%.0f%% skipped)\n"
        name len tree_flops tape_flops per_run
        (100. *. (1. -. (per_run /. float_of_int len))))
    tapes

let e11_json path =
  (* the executor rows run under the metrics registry so the emitted JSON
     can embed the key runtime counters alongside the wall times *)
  Prt.Metrics.enable ();
  Prt.Metrics.reset_all ();
  let (ts, tsc, tsn, tr, tp, tpn, th, tc, tcov, tg, nd, (swc, swn)), tapes =
    e11_rows ()
  in
  let variants = e11_opt_variants () in
  let per_step = e11_per_step () in
  let variant l = List.find (fun v -> v.v_label = l) variants in
  let sc = e11_scenario in
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"scenario\": { \"nx\": %d, \"ny\": %d, \"ndirs\": %d, \"nsteps\": %d },\n"
    sc.Bte.Setup.nx sc.Bte.Setup.ny sc.Bte.Setup.ndirs sc.Bte.Setup.nsteps;
  p "  \"ndomains\": %d,\n" nd;
  p "  \"wall_s\": {\n";
  p "    \"serial_tape\": %.6f,\n" ts;
  p "    \"serial_closure\": %.6f,\n" tsc;
  p "    \"serial_native\": %.6f,\n" tsn;
  p "    \"threaded_respawn\": %.6f,\n" tr;
  p "    \"threaded_pool\": %.6f,\n" tp;
  p "    \"threaded_pool_native\": %.6f,\n" tpn;
  p "    \"hybrid_2x2\": %.6f,\n" th;
  p "    \"cells_spmd_2\": %.6f,\n" tc;
  p "    \"cells_spmd_2_overlap\": %.6f,\n" tcov;
  p "    \"gpu\": %.6f\n" tg;
  p "  },\n";
  p "  \"pool_speedup_vs_respawn\": %.4f,\n" (tr /. tp);
  p "  \"serial_native_speedup_vs_closure\": %.4f,\n" (tsc /. tsn);
  (* the intensity-phase seconds isolate the evaluators from the
     temperature host callback, which every evaluator shares and which
     bounds the full-solve ratio at this mesh size (Amdahl) *)
  p "  \"serial_sweep_phase_s\": { \"closure\": %.6f, \"native\": %.6f },\n"
    swc swn;
  p "  \"serial_native_sweep_speedup\": %.4f,\n" (swc /. swn);
  (* per-step runtime overhead of the serial evaluators across mesh sizes
     (wall seconds / nsteps; the native rows run on a warm compile cache) *)
  p "  \"per_step_s\": {\n";
  List.iteri
    (fun i (nx, nsteps, psc, psn) ->
      p
        "    \"%dx%d\": { \"nsteps\": %d, \"closure\": %.7f, \"native\": \
         %.7f }%s\n"
        nx nx nsteps psc psn
        (if i = List.length per_step - 1 then "" else ","))
    per_step;
  p "  },\n";
  (* the --opt rows: same solves with the optimizer level pinned, each
     with the counter deltas it produced; opt1/opt2 threaded rows run the
     fused step-pair schedule (half the regions and barrier waits of
     opt0), the opt2 gpu row launches one batched kernel per step where
     opt0 launches one per resolved band.  wall_s is best-of-5 over warm
     rounds; the first-run native build cost sits in compile_ns so a cold
     codegen cache never skews the timed rows *)
  p "  \"opt_variants\": {\n";
  List.iteri
    (fun i v ->
      p
        "    \"%s\": { \"wall_s\": %.6f, \"compile_ns\": %d, \
         \"pool.regions\": %d, \"pool.barrier_waits\": %d, \
         \"pool.barrier_wait_ns\": %.0f, \"gpu.kernel_launches\": %d }%s\n"
        v.v_label v.v_wall v.v_compile_ns v.v_regions v.v_waits v.v_wait_ns
        v.v_launches
        (if i = List.length variants - 1 then "" else ","))
    variants;
  p "  },\n";
  let vp0 = variant "threaded_pool_opt0" and vp1 = variant "threaded_pool_opt1" in
  let vg0 = variant "gpu_opt0" and vg2 = variant "gpu_opt2" in
  p "  \"opt1_pool_regions_reduction\": %.4f,\n"
    (1. -. (float_of_int vp1.v_regions /. float_of_int (max 1 vp0.v_regions)));
  p "  \"opt1_pool_barrier_waits_reduction\": %.4f,\n"
    (1. -. (float_of_int vp1.v_waits /. float_of_int (max 1 vp0.v_waits)));
  p "  \"opt1_pool_speedup_vs_opt0\": %.4f,\n" (vp0.v_wall /. vp1.v_wall);
  p "  \"opt2_gpu_launch_reduction\": %.4f,\n"
    (1. -. (float_of_int vg2.v_launches /. float_of_int (max 1 vg0.v_launches)));
  (* under the native evaluator the optimizer's schedule wins show up on
     serial wall time (under the interpreter they sit below dispatch
     overhead; see docs/OPTIMIZER.md) *)
  let vn0 = variant "serial_native_opt0" and vn2 = variant "serial_native_opt2" in
  p "  \"serial_native_opt2_speedup_vs_opt0\": %.4f,\n"
    (vn0.v_wall /. vn2.v_wall);
  (* modelled paper-scale effect of the nonblocking exchange: the hidden
     seconds come straight off the cell-parallel per-step critical path *)
  let om = Bte.Perfmodel.cells_overlap ~p:20 () in
  p "  \"overlap_cells20_modelled\": {\n";
  p "    \"sync_step_s\": %.6f,\n" om.Bte.Perfmodel.sync_step;
  p "    \"overlap_step_s\": %.6f,\n" om.Bte.Perfmodel.overlap_step;
  p "    \"hidden_s\": %.6f\n" om.Bte.Perfmodel.hidden;
  p "  },\n";
  (* lint the benchmark scenario under the same backends the rows ran so
     the analysis.* counters in the JSON reflect this exact program *)
  List.iter
    (fun spec ->
      match Finch.Config.target_of_string spec with
      | Error _ -> ()
      | Ok tgt ->
        (match
           Finch.prepare
             { (request_of ~scenario:"hotspot" sc) with
               Finch.Solve_request.backend = tgt }
         with
         | Ok prep ->
           ignore
             (Finch_analysis.Driver.check_problem ~post_io:Bte.Setup.post_io
                prep.Finch.pr_problem)
         | Error _ -> ()))
    [ "serial"; "threads:2"; "hybrid:2x2"; "cells:2"; "gpu" ];
  let c name = Prt.Metrics.value (Prt.Metrics.counter name) in
  (* capture the lint tallies before the optimizer pipeline runs: its
     verification harness also feeds the analysis.* counters, including
     the findings of deliberately rejected passes *)
  let lint_errors = c "analysis.errors" in
  let lint_warnings = c "analysis.warnings" in
  (* run the optimizer pipeline over the bench scenario's threaded and
     gpu programs so the opt.* counters describe this configuration *)
  List.iter
    (fun target ->
      match
        Finch.prepare
          { (request_of ~scenario:"hotspot" e11_scenario) with
            Finch.Solve_request.backend =
              (match target with
               | `Pool -> Finch.Config.Cpu (Finch.Config.Threaded nd)
               | `Gpu -> gpu1) }
      with
      | Ok prep ->
        ignore
          (Finch_opt.Opt.optimize_problem ~post_io:Bte.Setup.post_io
             prep.Finch.pr_problem)
      | Error _ -> ())
    [ `Pool; `Gpu ];
  let bw = Prt.Metrics.histogram "pool.barrier_wait_ns" in
  p "  \"metrics\": {\n";
  p "    \"halo.bytes\": %d,\n" (c "halo.bytes");
  p "    \"halo.rounds\": %d,\n" (c "halo.rounds");
  p "    \"pool.regions\": %d,\n" (c "pool.regions");
  p "    \"pool.barrier_waits\": %d,\n" (Prt.Metrics.hist_count bw);
  p "    \"pool.barrier_wait_ns\": %.0f,\n" (Prt.Metrics.hist_sum bw);
  p "    \"spmd.barriers\": %d,\n" (c "spmd.barriers");
  p "    \"spmd.allreduce_bytes\": %d,\n" (c "spmd.allreduce_bytes");
  p "    \"spmd.p2p_msgs\": %d,\n" (c "spmd.p2p_msgs");
  p "    \"spmd.p2p_bytes\": %d,\n" (c "spmd.p2p_bytes");
  p "    \"spmd.waits\": %d,\n" (c "spmd.waits");
  p "    \"cluster.p2p_time_ns\": %d,\n" (c "cluster.p2p_time_ns");
  p "    \"gpu.kernel_launches\": %d,\n" (c "gpu.kernel_launches");
  p "    \"codegen.cache_hits\": %d,\n" (c "codegen.cache_hits");
  p "    \"codegen.cache_misses\": %d,\n" (c "codegen.cache_misses");
  p "    \"codegen.compile_ns\": %d,\n" (c "codegen.compile_ns");
  p "    \"opt.loops_fused\": %d,\n" (c "opt.loops_fused");
  p "    \"opt.steps_fused\": %d,\n" (c "opt.steps_fused");
  p "    \"opt.kernels_fused\": %d,\n" (c "opt.kernels_fused");
  p "    \"opt.assigns_eliminated\": %d,\n" (c "opt.assigns_eliminated");
  p "    \"opt.transfers_coalesced\": %d,\n" (c "opt.transfers_coalesced");
  p "    \"opt.h2d_hoisted\": %d,\n" (c "opt.h2d_hoisted");
  p "    \"opt.passes_rejected\": %d,\n" (c "opt.passes_rejected");
  p "    \"tape.ops_skipped\": %d,\n" (c "tape.ops_skipped");
  p "    \"analysis.errors\": %d,\n" lint_errors;
  p "    \"analysis.warnings\": %d,\n" lint_warnings;
  p "    \"sanitize.poison_reads\": %d\n" (c "sanitize.poison_reads");
  p "  },\n";
  p "  \"tapes\": {\n";
  List.iteri
    (fun i (name, len, runs, exec, tree_flops, tape_flops) ->
      p
        "    \"%s\": { \"ops\": %d, \"runs\": %d, \"executed\": %d, \
         \"executed_per_run\": %.3f, \"tree_flops\": %.1f, \"tape_flops\": \
         %.1f }%s\n"
        name len runs exec
        (float_of_int exec /. float_of_int (max 1 runs))
        tree_flops tape_flops
        (if i = List.length tapes - 1 then "" else ","))
    tapes;
  p "  }\n";
  p "}\n";
  close_out oc;
  row "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* E12: scripted strong-scaling campaign (scripts/run_scaling.sh)       *)
(* ------------------------------------------------------------------ *)

(* Sweeps every strategy of the performance model over the paper's rank
   counts (up to 320) and writes BENCH_scaling.json: per-point modelled
   run time, parallel efficiency relative to the series' first point,
   and communication fraction, plus the derived headline numbers (GPU
   speedup, DSL-vs-Fortran crossover, Amdahl ceiling of the band
   strategy).  The emitter self-validates — out-of-range efficiencies or
   communication fractions abort with a nonzero exit — so the CI smoke
   step only has to run it. *)

let scaling_ranks =
  [ 1; 2; 4; 5; 8; 10; 16; 20; 32; 40; 55; 64; 80; 128; 160; 256; 320 ]

type scal_row = {
  sr_p : int;
  sr_time : float;
  sr_eff : float;   (* t(p0)*p0 / (t(p)*p), p0 = first swept point *)
  sr_comm : float;  (* communication fraction of the modelled run *)
}

let scaling_series ~max_ranks =
  let s = Bte.Perfmodel.paper_shape in
  let ranks = List.filter (fun p -> p <= max_ranks) scaling_ranks in
  let series name cap strat =
    let rows =
      List.filter (fun p -> p <= cap) ranks
      |> List.map (fun p ->
             let b = Bte.Perfmodel.run_breakdown (strat p) in
             let pc = Prt.Breakdown.percentages b in
             ( p,
               Prt.Breakdown.total b,
               pc.Prt.Breakdown.pct_communication /. 100. ))
    in
    match rows with
    | [] -> name, []
    | (p0, t0, _) :: _ ->
      ( name,
        List.map
          (fun (p, t, cf) ->
            { sr_p = p;
              sr_time = t;
              sr_eff = t0 *. float_of_int p0 /. (t *. float_of_int p);
              sr_comm = cf })
          rows )
  in
  let serial_at_1 mk p = if p = 1 then Bte.Perfmodel.Serial else mk p in
  [ series "dsl_bands" s.Bte.Perfmodel.nbands
      (serial_at_1 (fun p -> Bte.Perfmodel.Bands p));
    series "dsl_cells" s.Bte.Perfmodel.ncells
      (serial_at_1 (fun p -> Bte.Perfmodel.Cells p));
    series "fortran" s.Bte.Perfmodel.nbands (fun p -> Bte.Perfmodel.Fortran p);
    series "gpu" s.Bte.Perfmodel.nbands (fun p -> Bte.Perfmodel.Gpu p);
    (* the 2-D decompositions: each band-parallel rank drives a grid of
       devices tiling the cells (d2d ghosts over NVLink / host staging) *)
    series "gpu_grid_4dev" s.Bte.Perfmodel.nbands
      (fun p -> Bte.Perfmodel.Gpu_grid (4, p));
    series "gpu_grid_8dev" s.Bte.Perfmodel.nbands
      (fun p -> Bte.Perfmodel.Gpu_grid (8, p)) ]

let scaling_validate series =
  let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("scaling: " ^ m); exit 1) fmt in
  List.iter
    (fun (name, rows) ->
      if rows = [] then fail "series %s swept no rank counts" name;
      List.iter
        (fun r ->
          if not (r.sr_time > 0.) then
            fail "%s p=%d: non-positive run time %g" name r.sr_p r.sr_time;
          if r.sr_eff <= 0. || r.sr_eff > 1.2 then
            fail "%s p=%d: efficiency %g outside (0, 1.2]" name r.sr_p r.sr_eff;
          if r.sr_comm < 0. || r.sr_comm > 1. then
            fail "%s p=%d: communication fraction %g outside [0, 1]" name
              r.sr_p r.sr_comm)
        rows;
      (* monotone-sane: scaling overheads only grow, so the last swept
         point cannot be more efficient than the first *)
      let first = List.hd rows and last = List.nth rows (List.length rows - 1) in
      if List.length rows > 1 && last.sr_eff > first.sr_eff +. 1e-9 then
        fail "%s: efficiency rises from %.3f (p=%d) to %.3f (p=%d)" name
          first.sr_eff first.sr_p last.sr_eff last.sr_p)
    series

(* smallest swept p where [a] runs faster than [b]; None if never *)
let crossover rows_a rows_b =
  List.find_map
    (fun ra ->
      match List.find_opt (fun rb -> rb.sr_p = ra.sr_p) rows_b with
      | Some rb when ra.sr_time < rb.sr_time -> Some ra.sr_p
      | _ -> None)
    rows_a

let e12_scaling ?(max_ranks = 320) path =
  section
    (Printf.sprintf
       "E12 - strong-scaling campaign to %d ranks (modelled, paper scale)"
       max_ranks);
  let s = Bte.Perfmodel.paper_shape in
  let series = scaling_series ~max_ranks in
  scaling_validate series;
  let find name = List.assoc name series in
  let bands = find "dsl_bands" and fortran = find "fortran" in
  let cells = find "dsl_cells" and gpu = find "gpu" in
  let xover_fortran = crossover bands fortran in
  let gpu10 = List.find_opt (fun r -> r.sr_p = 10) gpu in
  (* the paper's "roughly equal" best times: first cell-parallel point
     within 15% of the 10-GPU run *)
  let cells_matching_gpu10 =
    match gpu10 with
    | None -> None
    | Some g ->
      List.find_map
        (fun r -> if r.sr_time <= 1.15 *. g.sr_time then Some r.sr_p else None)
        cells
  in
  let cells320_over_gpu10 =
    match gpu10, List.find_opt (fun r -> r.sr_p = max_ranks) cells with
    | Some g, Some c -> Some (c.sr_time /. g.sr_time)
    | _ -> None
  in
  let headline = Bte.Perfmodel.gpu_speedup ~p:1 () in
  (* Amdahl ceiling of the band strategy: the per-cell Newton solve runs
     redundantly on every rank, so it bounds the achievable speedup *)
  let t_serial = Bte.Perfmodel.run_time Bte.Perfmodel.Serial in
  let amdahl_floor =
    float_of_int (s.Bte.Perfmodel.nsteps * s.Bte.Perfmodel.ncells)
    *. Bte.Perfmodel.default.Bte.Perfmodel.newton_cell_time
  in
  let amdahl_ceiling = t_serial /. amdahl_floor in
  row "%-16s %6s %12s %12s %10s\n" "series" "p" "time [s]" "efficiency"
    "comm";
  List.iter
    (fun (name, rows) ->
      List.iter
        (fun r ->
          row "%-16s %6d %12.1f %11.1f%% %9.1f%%\n" name r.sr_p r.sr_time
            (100. *. r.sr_eff) (100. *. r.sr_comm))
        rows)
    series;
  row "\nGPU vs equal-partition CPU at p=1: %.1fx (paper: ~18x)\n" headline;
  (match xover_fortran with
   | Some p ->
     row "DSL band strategy overtakes the Fortran reference at p=%d\n" p
   | None -> row "DSL band strategy never overtakes Fortran in this sweep\n");
  (match cells_matching_gpu10, gpu10 with
   | Some p, Some g ->
     row
       "cells(%d) comes within 15%% of the 10-GPU run (%.1f s) — the paper's \
        \"roughly equal\" best times\n"
       p g.sr_time
   | _ -> ());
  row "Amdahl ceiling of the band strategy: %.0fx (redundant Newton floor %.1f s)\n"
    amdahl_ceiling amdahl_floor;
  (* ---- JSON ---- *)
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"campaign\": \"strong-scaling\",\n";
  p "  \"max_ranks\": %d,\n" max_ranks;
  p "  \"shape\": { \"ncells\": %d, \"ndirs\": %d, \"nbands\": %d, \"nsteps\": %d },\n"
    s.Bte.Perfmodel.ncells s.Bte.Perfmodel.ndirs s.Bte.Perfmodel.nbands
    s.Bte.Perfmodel.nsteps;
  p "  \"series\": {\n";
  List.iteri
    (fun i (name, rows) ->
      p "    \"%s\": [\n" name;
      List.iteri
        (fun j r ->
          p
            "      { \"p\": %d, \"time_s\": %.4f, \"efficiency\": %.4f, \
             \"comm_fraction\": %.4f }%s\n"
            r.sr_p r.sr_time r.sr_eff r.sr_comm
            (if j = List.length rows - 1 then "" else ","))
        rows;
      p "    ]%s\n" (if i = List.length series - 1 then "" else ","))
    series;
  p "  },\n";
  p "  \"crossovers\": {\n";
  p "    \"dsl_bands_beats_fortran_at_p\": %s,\n"
    (match xover_fortran with Some v -> string_of_int v | None -> "null");
  p "    \"cells_matching_gpu10_at_p\": %s\n"
    (match cells_matching_gpu10 with
     | Some v -> string_of_int v
     | None -> "null");
  p "  },\n";
  p "  \"headlines\": {\n";
  p "    \"gpu_speedup_1rank\": %.4f,\n" headline;
  (match cells320_over_gpu10 with
   | Some r -> p "    \"cells_max_over_gpu10_ratio\": %.4f,\n" r
   | None -> ());
  p "    \"amdahl_bands_floor_s\": %.4f,\n" amdahl_floor;
  p "    \"amdahl_bands_ceiling_speedup\": %.4f\n" amdahl_ceiling;
  p "  },\n";
  p "  \"validated\": true\n";
  p "}\n";
  close_out oc;
  row "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* E14: autotuner validation campaign (bench/main.exe tune)             *)
(* ------------------------------------------------------------------ *)

(* Measures a scenario x shape matrix: a curated set of hand-picked
   plans per row next to the plan the autotuner picks for the same
   request with measured refinement over its full candidate set.  All
   walls for one row come from the tuner's single interleaved trial
   batch (comparisons are only valid within a batch).  Writes
   BENCH_tune.json and self-validates — the auto plan's wall must come
   within 5% of the best hand-picked row and strictly beat the worst,
   and the auto-resolved request must produce a bit-identical solution
   to the same plan spelled by hand — aborting with a nonzero exit on
   any violation, so the CI smoke step only has to run it. *)

type tune_row = {
  tp_plan : Finch_tune.Plan.t;
  tp_wall : float;   (* best-of-N full-length solve, seconds *)
}

let tune_rounds = 3

(* the tuner's own refinement gets more trials than the row
   measurements: its argmin must land on the true fastest plan, and
   best-trial minima only converge on the floor from above *)
let tune_trials = 5

(* best-of-N for a set of plans with the rounds interleaved (one solve
   per plan per round), so clock drift — warmup, frequency scaling —
   biases no plan; preparation stays outside the timed windows *)
let tune_measure_plans base plans =
  let preps =
    List.map
      (fun pl ->
        let req = Finch_tune.Plan.apply pl base in
        match Finch.prepare req with
        | Ok prep -> pl, req, prep
        | Error e -> failwith (Finch.Solve_error.to_string e))
      plans
  in
  let walls = Array.make (List.length plans) infinity in
  for _ = 1 to tune_rounds do
    List.iteri
      (fun i (_, req, prep) ->
        match Finch.solve_prepared req prep with
        | Ok res -> walls.(i) <- Float.min walls.(i) res.Finch.Solve_result.wall_s
        | Error e -> failwith (Finch.Solve_error.to_string e))
      preps
  done;
  List.mapi (fun i pl -> { tp_plan = pl; tp_wall = walls.(i) }) plans

(* the hand-picked comparison set: the plans someone reading
   docs/EXPERIMENTS.md would plausibly spell out, spanning good and
   deliberately poor choices for a reduced-scale mesh (a domain pool or
   the simulated GPU pays more in dispatch than the cells earn back) *)
let tune_hand_plans (profile : Finch_tune.Tune.profile) (sc : Bte.Setup.scenario) =
  let open Finch.Config in
  let mk ?opt_level ?eval_mode ?overlap target =
    Finch_tune.Plan.make ?opt_level ?eval_mode ?overlap
      ~chunk:(Finch_tune.Plan.chunk_of_target target)
      target
  in
  let ncells = sc.Bte.Setup.nx * sc.Bte.Setup.ny in
  List.concat
    [ [ mk (Cpu Serial); mk ~opt_level:O0 (Cpu Serial) ];
      (if profile.Finch_tune.Tune.native_ok then
         [ mk ~eval_mode:Native (Cpu Serial) ]
       else []);
      (if profile.Finch_tune.Tune.cores >= 2 then
         [ mk (Cpu (Threaded 2)) ]
       else []);
      (if ncells >= 2 then [ mk (Cpu (Cell_parallel 2)) ] else []);
      [ mk gpu1; mk ~opt_level:O0 gpu1 ] ]

let e14_tune path =
  section "E14 - autotuner validation campaign (measured, reduced scale)";
  Prt.Metrics.enable ();
  Prt.Metrics.reset_all ();
  let fail fmt =
    Printf.ksprintf (fun m -> prerr_endline ("tune: " ^ m); exit 1) fmt
  in
  let profile = Finch_tune.Tune.detect_profile () in
  row "profile: %d cores, gpu %s, native %b\n" profile.Finch_tune.Tune.cores
    profile.Finch_tune.Tune.gpu profile.Finch_tune.Tune.native_ok;
  let matrix =
    [ ( "hotspot",
        { Bte.Setup.small_hotspot with Bte.Setup.nx = 8; ny = 8; nsteps = 30 } );
      ( "corner",
        { Bte.Setup.small_corner with Bte.Setup.nx = 10; ny = 10; nsteps = 20 } ) ]
  in
  let results =
    List.map
      (fun (scenario, sc) ->
        let base = request_of ~scenario sc in
        row "\n%s %dx%d, %d dirs, %d LA bands, %d steps:\n" scenario
          sc.Bte.Setup.nx sc.Bte.Setup.ny sc.Bte.Setup.ndirs
          sc.Bte.Setup.n_la_bands sc.Bte.Setup.nsteps;
        (* the tuner's pick for the same request: full candidate set
           through the analysis gate, then measured refinement at full
           length — the model's absolute seconds are calibrated to the
           paper's hardware, so on this machine the trials decide *)
        let auto_req = { base with Finch.Solve_request.backend = Finch.Config.Auto } in
        let decision =
          match
            Finch_tune.Tune.plan ~profile ~post_io:Bte.Setup.post_io
              ~shortlist:max_int ~measure_steps:sc.Bte.Setup.nsteps
              ~measure_trials:tune_trials ~force:true auto_req
          with
          | Ok d -> d
          | Error m -> fail "%s: tuner failed: %s" scenario m
        in
        let chosen = decision.Finch_tune.Tune.dc_plan in
        (* every wall below comes from the tuner's single interleaved
           trial batch (one solve per candidate per round, best of
           [tune_trials]): comparisons are only valid within one batch —
           a separate re-measurement phase would fold clock and GC drift
           between the phases into the auto-vs-hand ratios.  Hand plans
           the candidate table does not cover are measured in their own
           interleaved batch as a fallback. *)
        let batch =
          List.filter_map
            (fun (c : Finch_tune.Tune.candidate) ->
              match c.Finch_tune.Tune.cd_measured_s with
              | Some w ->
                Some { tp_plan = c.Finch_tune.Tune.cd_plan; tp_wall = w }
              | None -> None)
            decision.Finch_tune.Tune.dc_candidates
        in
        let from_batch pl =
          List.find_opt
            (fun r -> Finch_tune.Plan.equal r.tp_plan pl)
            batch
        in
        let hand = tune_hand_plans profile sc in
        let missing = List.filter (fun pl -> from_batch pl = None) hand in
        let fallback = tune_measure_plans base missing in
        let rows =
          List.map
            (fun pl ->
              match from_batch pl with
              | Some r -> r
              | None ->
                (match
                   List.find_opt
                     (fun r -> Finch_tune.Plan.equal r.tp_plan pl)
                     fallback
                 with
                 | Some r -> r
                 | None -> fail "%s: plan %s never measured" scenario
                             (Finch_tune.Plan.name pl)))
            hand
        in
        List.iter
          (fun r ->
            row "  %-44s %8.4f s\n" (Finch_tune.Plan.name r.tp_plan) r.tp_wall)
          rows;
        let auto_wall =
          match decision.Finch_tune.Tune.dc_measured_s with
          | Some w -> w
          | None -> fail "%s: tuner returned no measured wall" scenario
        in
        (* bit-identity: the auto-resolved request against the same plan
           spelled by hand must agree to the last bit *)
        let solve req =
          match facade_solve req with
          | _, res -> res.Finch.Solve_result.solution
        in
        let hand_req =
          { base with
            Finch.Solve_request.backend = chosen.Finch_tune.Plan.target;
            opt_level = chosen.Finch_tune.Plan.opt_level;
            eval_mode = chosen.Finch_tune.Plan.eval_mode;
            overlap = chosen.Finch_tune.Plan.overlap }
        in
        let bit_diff =
          Fvm.Field.max_abs_diff
            (solve (Finch_tune.Plan.apply chosen base))
            (solve hand_req)
        in
        let best = List.fold_left (fun a r -> Float.min a r.tp_wall) infinity rows in
        let worst = List.fold_left (fun a r -> Float.max a r.tp_wall) 0. rows in
        row "  auto -> %-36s %8.4f s  (best %.4f, worst %.4f, bit diff %g)\n"
          (Finch_tune.Plan.name chosen) auto_wall best worst bit_diff;
        (* ---- validation ---- *)
        if auto_wall > 1.05 *. best then
          fail "%s: auto plan %s at %.4f s misses best hand-picked %.4f s by >5%%"
            scenario (Finch_tune.Plan.name chosen) auto_wall best;
        if not (auto_wall < worst) then
          fail "%s: auto plan %s at %.4f s does not beat worst hand-picked %.4f s"
            scenario (Finch_tune.Plan.name chosen) auto_wall worst;
        if bit_diff <> 0. then
          fail "%s: auto-resolved solve differs from hand-spelled plan by %g"
            scenario bit_diff;
        scenario, sc, rows, decision, auto_wall, best, worst, bit_diff)
      matrix
  in
  (* ---- JSON ---- *)
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  let c name =
    match List.assoc_opt name (Prt.Metrics.counter_values ()) with
    | Some v -> v
    | None -> 0
  in
  p "{\n";
  p "  \"campaign\": \"autotune\",\n";
  p "  \"trials\": %d,\n" tune_trials;
  p "  \"profile\": { \"cores\": %d, \"gpu\": \"%s\", \"native_ok\": %b },\n"
    profile.Finch_tune.Tune.cores profile.Finch_tune.Tune.gpu
    profile.Finch_tune.Tune.native_ok;
  p "  \"rows\": [\n";
  List.iteri
    (fun i (scenario, (sc : Bte.Setup.scenario), rows, decision, auto_wall,
            best, worst, bit_diff) ->
      let chosen = decision.Finch_tune.Tune.dc_plan in
      p "    {\n";
      p
        "      \"scenario\": \"%s\", \"nx\": %d, \"ny\": %d, \"ndirs\": %d, \
         \"nsteps\": %d,\n"
        scenario sc.Bte.Setup.nx sc.Bte.Setup.ny sc.Bte.Setup.ndirs
        sc.Bte.Setup.nsteps;
      p "      \"plans\": [\n";
      List.iteri
        (fun j r ->
          p "        { \"plan\": \"%s\", \"wall_s\": %.6f }%s\n"
            (Finch_tune.Plan.name r.tp_plan) r.tp_wall
            (if j = List.length rows - 1 then "" else ","))
        rows;
      p "      ],\n";
      p "      \"auto\": {\n";
      p "        \"plan\": \"%s\",\n" (Finch_tune.Plan.name chosen);
      p "        \"predicted_s\": %.6f,\n"
        decision.Finch_tune.Tune.dc_predicted_s;
      p "        \"wall_s\": %.6f,\n" auto_wall;
      p "        \"best_hand_s\": %.6f,\n" best;
      p "        \"worst_hand_s\": %.6f,\n" worst;
      p "        \"ratio_to_best\": %.4f,\n" (auto_wall /. best);
      p "        \"bit_diff\": %g,\n" bit_diff;
      p "        \"candidates_gated\": %d\n"
        (List.length decision.Finch_tune.Tune.dc_candidates);
      p "      }\n";
      p "    }%s\n" (if i = List.length results - 1 then "" else ","))
    results;
  p "  ],\n";
  p "  \"metrics\": {\n";
  p "    \"tune.candidates_scored\": %d,\n" (c "tune.candidates_scored");
  p "    \"tune.measured_trials\": %d,\n" (c "tune.measured_trials");
  p "    \"tune.cache_misses\": %d\n" (c "tune.cache_misses");
  p "  },\n";
  p "  \"validated\": true\n";
  p "}\n";
  close_out oc;
  row "\nwrote %s (validated)\n" path

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks (bechamel)                                          *)
(* ------------------------------------------------------------------ *)

let micro () =
  section "bechamel micro-benchmarks (one Test.make per experiment kernel)";
  let open Bechamel in
  let sc =
    { Bte.Setup.small_hotspot with Bte.Setup.nx = 12; ny = 12; nsteps = 1 }
  in
  let refsolver = Bte.Reference.create sc in
  let built = Bte.Setup.build sc in
  let st = Finch.Lower.build built.Bte.Setup.problem in
  let built_tp = Bte.Setup.build sc in
  Finch.Problem.set_eval_mode built_tp.Bte.Setup.problem Finch.Config.Tape;
  let st_tp = Finch.Lower.build built_tp.Bte.Setup.problem in
  let mesh = built.Bte.Setup.mesh in
  let part = Fvm.Partition.rcb_mesh mesh ~nparts:4 in
  let pool = Prt.Pool.create ~size:4 in
  let tests =
    [
      (* E2/E7: the intensity sweep, hand-written and DSL-generated *)
      Test.make ~name:"e7-reference-sweep"
        (Staged.stage (fun () -> Bte.Reference.sweep refsolver));
      Test.make ~name:"e2-dsl-sweep"
        (Staged.stage (fun () -> Finch.Lower.sweep st));
      (* E11: tape vs closure evaluation of the same sweep *)
      Test.make ~name:"e11-dsl-sweep-tape"
        (Staged.stage (fun () -> Finch.Lower.sweep st_tp));
      (* E11: pool region dispatch vs per-region domain spawn/join *)
      Test.make ~name:"e11-pool-region"
        (Staged.stage (fun () -> Prt.Pool.run pool (fun _ -> ())));
      Test.make ~name:"e11-domain-spawn-join"
        (Staged.stage (fun () ->
             let ds = Array.init 3 (fun _ -> Domain.spawn (fun () -> ())) in
             Array.iter Domain.join ds));
      (* E3/E5: temperature update *)
      Test.make ~name:"e3-temperature-update"
        (Staged.stage (fun () -> Bte.Reference.temperature_update refsolver));
      (* E2: partitioning and halo construction *)
      Test.make ~name:"e2-rcb-partition"
        (Staged.stage (fun () -> ignore (Fvm.Partition.rcb_mesh mesh ~nparts:8)));
      Test.make ~name:"e2-halo-plan"
        (Staged.stage (fun () -> ignore (Fvm.Halo.build mesh part)));
      (* E10: the symbolic pipeline *)
      Test.make ~name:"e10-conservation-form-transform"
        (Staged.stage (fun () ->
             ignore
               (Finch.Transform.conservation_form
                  (Finch.Entity.variable ~name:"u" ())
                  "-k*u - surface(upwind([bx;by], u))")));
      Test.make ~name:"e10-emit-julia"
        (Staged.stage (fun () ->
             ignore
               (Finch.Emit_source.to_julia
                  (Finch.Ir.build_cpu built.Bte.Setup.problem))));
      (* E4/E6: roofline model and the full scaling sweep *)
      Test.make ~name:"e4-roofline-model"
        (Staged.stage (fun () ->
             ignore
               (Gpu_sim.Spec.kernel_time Gpu_sim.Spec.a6000 ~threads:1000000
                  ~flops:1e8 ~dram_bytes:1e7)));
      Test.make ~name:"e6-perfmodel-gpu-sweep"
        (Staged.stage (fun () ->
             List.iter
               (fun p -> ignore (Bte.Perfmodel.run_time (Bte.Perfmodel.Gpu p)))
               [ 1; 2; 4; 8 ]));
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name est ->
          match Analyze.OLS.estimates est with
          | Some [ ns ] -> row "  %-36s %14.1f ns/run\n" name ns
          | _ -> row "  %-36s (no estimate)\n" name)
        analyzed)
    tests;
  Prt.Pool.shutdown pool

(* ------------------------------------------------------------------ *)
(* Ablations: sensitivity of the reproduced figures to the modelling      *)
(* choices DESIGN.md calls out.                                           *)
(* ------------------------------------------------------------------ *)

let ablate () =
  section "Ablation 1 - GPU model: A6000 vs A100 (paper: \"similar results\")";
  row "%-8s %14s %14s
" "GPUs" "A6000 [s]" "A100 [s]";
  let a100 = { Bte.Perfmodel.default with Bte.Perfmodel.gpu = Gpu_sim.Spec.a100 } in
  List.iter
    (fun g ->
      row "%-8d %14.1f %14.1f
" g
        (Bte.Perfmodel.run_time (Bte.Perfmodel.Gpu g))
        (Bte.Perfmodel.run_time ~calib:a100 (Bte.Perfmodel.Gpu g)))
    [ 1; 2; 4; 8; 10 ];
  row
    "=> nearly identical: the hybrid run is dominated by the CPU-side temperature
    \   update, so the faster device changes little — the paper's A100 observation.
";

  section "Ablation 2 - network byte rate (Fig. 4/5 sensitivity)";
  row "%-14s %18s %20s %16s
" "beta [GB/s]" "bands(55) [s]" "intensity share" "cells(320) [s]";
  List.iter
    (fun gbps ->
      let calib =
        { Bte.Perfmodel.default with
          Bte.Perfmodel.network = { Prt.Cluster.alpha = 2e-6; beta = 1. /. (gbps *. 1e9) } }
      in
      let b = Bte.Perfmodel.run_breakdown ~calib (Bte.Perfmodel.Bands 55) in
      let pc = Prt.Breakdown.percentages b in
      row "%-14.2f %18.1f %19.1f%% %16.1f
" gbps (Prt.Breakdown.total b)
        pc.Prt.Breakdown.pct_intensity
        (Bte.Perfmodel.run_time ~calib (Bte.Perfmodel.Cells 320)))
    [ 0.25; 0.5; 1.0; 12.5 ];

  section "Ablation 3 - synchronization jitter (the Fig. 5 communication share)";
  row "%-10s %22s %20s
" "jitter" "bands(55) comm share" "cells(320) [s]";
  List.iter
    (fun j ->
      let calib = { Bte.Perfmodel.default with Bte.Perfmodel.sync_jitter = j } in
      let b = Bte.Perfmodel.run_breakdown ~calib (Bte.Perfmodel.Bands 55) in
      let pc = Prt.Breakdown.percentages b in
      row "%-10.4f %21.1f%% %20.1f
" j pc.Prt.Breakdown.pct_communication
        (Bte.Perfmodel.run_time ~calib (Bte.Perfmodel.Cells 320)))
    [ 0.; 0.0025; 0.005; 0.01 ];

  section "Ablation 4 - Fortran temperature-update parallelization (Fig. 9)";
  row "%-10s %18s %18s
" "p" "Fortran serial-T" "Fortran parallel-T";
  let par = { Bte.Perfmodel.default with Bte.Perfmodel.fortran_temp_parallel = true } in
  List.iter
    (fun p ->
      row "%-10d %18.1f %18.1f
" p
        (Bte.Perfmodel.run_time (Bte.Perfmodel.Fortran p))
        (Bte.Perfmodel.run_time ~calib:par (Bte.Perfmodel.Fortran p)))
    [ 1; 10; 20; 40; 55 ];
  row
    "=> the un-parallelized temperature update is what makes the Fortran curve
    \   flatten in Fig. 9 (\"slightly different parallelization of one part\").
";

  section "Ablation 5 - band-reduction payload: scalar energy vs per-band J";
  let s = Bte.Perfmodel.paper_shape in
  let net = Bte.Perfmodel.default.Bte.Perfmodel.network in
  row "%-10s %22s %22s
" "p" "scalar (ncells) [ms]" "per-band (x nbands) [ms]";
  List.iter
    (fun p ->
      let scalar = Prt.Cluster.allreduce net ~p ~bytes:(8 * s.Bte.Perfmodel.ncells) in
      let perband =
        Prt.Cluster.allreduce net ~p
          ~bytes:(8 * s.Bte.Perfmodel.ncells * s.Bte.Perfmodel.nbands)
      in
      row "%-10d %22.3f %22.3f
" p (1e3 *. scalar) (1e3 *. perband))
    [ 2; 10; 55 ];
  row
    "=> the paper's \"only a reduction of intensity across bands\" stays cheap with
    \   the scalar payload (the implementation's default); the exactly-conservative
    \   per-band variant costs ~%dx more traffic per step.
"
    s.Bte.Perfmodel.nbands

let all_experiments =
  [ "e1", e1; "e2", e2; "e3", e3; "e4", e4; "e5", e5; "e6", e6; "e7", e7;
    "e8", e8; "e11", e11 ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  (* `--trace PATH` / `--backend SPEC` consume their argument; the
     remaining flags are plain *)
  let rec take_opt key acc = function
    | k :: v :: rest when k = key -> Some v, List.rev_append acc rest
    | a :: rest -> take_opt key (a :: acc) rest
    | [] -> None, List.rev acc
  in
  let trace, args = take_opt "--trace" [] args in
  let backend, args = take_opt "--backend" [] args in
  let max_ranks, args = take_opt "--max-ranks" [] args in
  let out, args = take_opt "--out" [] args in
  (match backend with
   | Some spec -> (
     match Finch.Config.target_of_string spec with
     | Ok t -> extra_backend := Some (Finch.Config.target_name t, t)
     | Error e ->
       Printf.eprintf "error: %s\n" e;
       exit 2)
   | None -> ());
  let measured = List.mem "--measured" args in
  let json = List.mem "--json" args in
  let metrics = List.mem "--metrics" args in
  let selected =
    List.filter
      (fun a -> a <> "--measured" && a <> "--json" && a <> "--metrics")
      args
  in
  (match trace with Some _ -> Prt.Trace.enable () | None -> ());
  if metrics then Prt.Metrics.enable ();
  (* the generated-code evaluator rows need the codegen backend wired in *)
  Finch_codegen.Codegen.install ~post_io:Bte.Setup.post_io ();
  let finish_observability () =
    (match trace with
     | Some path ->
       Prt.Trace.write_chrome path;
       Printf.printf "trace: %d events on %d tracks written to %s\n"
         (Prt.Trace.event_count ())
         (List.length (Prt.Trace.tracks ()))
         path
     | None -> ());
    if metrics then begin
      print_endline "metrics:";
      print_string (Prt.Metrics.dump_text ())
    end
  in
  let run_micro = List.mem "micro" selected in
  let run_ablate = List.mem "ablate" selected in
  let run_scaling = List.mem "scaling" selected in
  let run_tune = List.mem "tune" selected in
  let selected =
    List.filter
      (fun a -> a <> "micro" && a <> "ablate" && a <> "scaling" && a <> "tune")
      selected
  in
  if run_tune then begin
    (* `bench/main.exe tune [--out PATH]`: the autotuner validation
       campaign (E14, CI smoke) *)
    e14_tune (Option.value out ~default:"BENCH_tune.json");
    finish_observability ();
    exit 0
  end;
  if run_scaling then begin
    (* `bench/main.exe scaling [--max-ranks N] [--out PATH]`: the scripted
       strong-scaling campaign (scripts/run_scaling.sh, CI smoke) *)
    let max_ranks =
      match max_ranks with
      | Some v ->
        (try
           let n = int_of_string v in
           if n < 1 then raise Exit else n
         with _ ->
           Printf.eprintf "error: --max-ranks expects a positive integer\n";
           exit 2)
      | None -> 320
    in
    e12_scaling ~max_ranks (Option.value out ~default:"BENCH_scaling.json");
    finish_observability ();
    exit 0
  end;
  if json then begin
    (* `bench/main.exe --json`: just the measured executor comparison *)
    e11_json "BENCH_cpu.json";
    finish_observability ();
    exit 0
  end;
  Printf.printf
    "Phonon-BTE DSL reproduction benches (paper: IPDPS 2024, 10.1109/IPDPS57955.2024.00045)\n";
  Printf.printf
    "Paper-scale rows use the calibrated performance model; --measured adds real reduced-scale runs.\n";
  (match selected with
   | [] when (not run_micro) && not run_ablate ->
     List.iter (fun (_, f) -> f ~measured) all_experiments
   | [] -> ()
   | names ->
     List.iter
       (fun name ->
         match List.assoc_opt name all_experiments with
         | Some f -> f ~measured
         | None -> Printf.eprintf "unknown experiment %s\n" name)
       names);
  if run_ablate then ablate ();
  if run_micro then micro ();
  finish_observability ()
