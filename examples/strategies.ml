(* Exploring parallel strategies with the DSL (paper Section III-C):
   the same BTE problem solved with band-based and cell-based equation
   partitioning, the shared-memory threaded executor, and the hybrid GPU
   target — "the ease of exploring a variety of parallel strategies".

   Also demonstrates [assemblyLoops]: permuting the generated loop nest so
   the band loop is outermost, as the paper does for the band-parallel
   configuration, and shows that results are identical. *)

open Bte

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  r, Unix.gettimeofday () -. t0

let () =
  let sc = { Setup.small_hotspot with Setup.nx = 16; ny = 16; nsteps = 25 } in
  Printf.printf "BTE %dx%d cells, %d dirs, %d LA bands, %d steps\n\n%!"
    sc.Setup.nx sc.Setup.ny sc.Setup.ndirs sc.Setup.n_la_bands sc.Setup.nsteps;

  (* every strategy is the same request with a different backend — the
     facade prepares and runs it (Finch.solve = prepare + solve_prepared) *)
  Setup.register_scenarios ();
  let request target =
    { (Finch.Solve_request.make "hotspot") with
      Finch.Solve_request.nx = sc.Setup.nx;
      ny = sc.Setup.ny;
      ndirs = sc.Setup.ndirs;
      nbands = sc.Setup.n_la_bands;
      nsteps = sc.Setup.nsteps;
      backend = target }
  in
  let solve target =
    match Finch.solve (request target) with
    | Ok res ->
      res.Finch.Solve_result.outcome, res.Finch.Solve_result.wall_s
    | Error e -> failwith (Finch.Solve_error.to_string e)
  in

  let serial, t_serial = solve (Finch.Config.Cpu Finch.Config.Serial) in
  Printf.printf "%-22s %6.2f s\n%!" "serial" t_serial;

  let strategies =
    [ "band-parallel (4)", Finch.Config.Cpu (Finch.Config.Band_parallel 4);
      "cell-parallel (4)", Finch.Config.Cpu (Finch.Config.Cell_parallel 4);
      "threads (pool of 4)", Finch.Config.Cpu (Finch.Config.Threaded 4);
      "hybrid (2 ranks x 2)", Finch.Config.Cpu (Finch.Config.Hybrid (2, 2));
      "hybrid CPU+GPU", Finch.Config.Gpu { spec = Gpu_sim.Spec.a6000; devices = 1; ranks = 1 } ]
  in
  List.iter
    (fun (name, target) ->
      let o, t = solve target in
      let diff =
        Fvm.Field.max_abs_diff serial.Finch.Solve.u o.Finch.Solve.u
        /. Float.max 1e-300 (Fvm.Field.max_abs serial.Finch.Solve.u)
      in
      Printf.printf "%-22s %6.2f s   max relative deviation vs serial: %.2e\n%!"
        name t diff)
    strategies;

  (* assemblyLoops: band loop outermost, as in the paper's listing
     assemblyLoops([band, "cells", direction]) *)
  let built = Setup.build sc in
  Finch.Problem.assembly_loops built.Setup.problem [ "b"; "elements"; "d" ];
  let o_perm, t_perm = wall (fun () -> Finch.Solve.solve built.Setup.problem) in
  Printf.printf "%-22s %6.2f s   max deviation vs default order: %.2e\n%!"
    "loops [b;cells;d]" t_perm
    (Fvm.Field.max_abs_diff serial.Finch.Solve.u o_perm.Finch.Solve.u);

  (* the communication-pattern comparison behind Fig. 3 *)
  let mesh = built.Setup.mesh in
  let nb = Dispersion.nbands built.Setup.disp in
  let comp = sc.Setup.ndirs * nb in
  print_newline ();
  Printf.printf "communication volume per step at 4 partitions (Fig. 3):\n";
  let part = Fvm.Partition.rcb_mesh mesh ~nparts:4 in
  let halo = Fvm.Halo.build mesh part in
  let halo_bytes =
    let acc = ref 0 in
    for r = 0 to 3 do
      acc := !acc + Fvm.Halo.bytes_per_round halo r ~ncomp:comp ~bytes_per:8
    done;
    !acc / 2 (* each value counted at sender and receiver *)
  in
  Printf.printf "  mesh partitioning : %7d B of ghost intensities (%d cut faces)\n"
    halo_bytes
    (Fvm.Partition.edge_cut mesh part);
  Printf.printf "  band partitioning : %7d B (one absorbed-power value per cell)\n"
    (8 * mesh.Fvm.Mesh.ncells);
  Printf.printf
    "  => partitioning the equations needs far less communication, as the paper argues\n"
