(* Direct tests of the expression-to-closure compiler: special symbols,
   index handling, coefficient kinds, ghost access, and error paths. *)

open Finch_symbolic

let check_bool = Alcotest.(check bool)

let mesh = Fvm.Mesh_gen.rectangle ~nx:3 ~ny:2 ~lx:3.0 ~ly:2.0 ()

let make_env () =
  Finch.Eval.make_env ~mesh ~dt:(ref 0.5) ~time:(ref 2.0)
    ~index_names:[ "d"; "b" ]

let compile bindings s = Finch.Eval.compile bindings (Parser.parse s)

let test_special_symbols () =
  let env = make_env () in
  env.Finch.Eval.cell <- 4; (* grid position (1,1): centroid (1.5, 1.5) *)
  Tutil.check_close "dt" 0.5 (compile [] "dt" env);
  Tutil.check_close "time" 2.0 (compile [] "t" env);
  Tutil.check_close "pi" Float.pi (compile [] "pi" env);
  Tutil.check_close "x" 1.5 (compile [] "x" env);
  Tutil.check_close "y" 1.5 (compile [] "y" env);
  Tutil.check_close "VOLUME" 1.0 (compile [] "VOLUME" env)

let test_normals_with_sign () =
  let env = make_env () in
  (* find a vertical interior face and read NORMAL_1 from both sides *)
  let f = ref (-1) in
  for i = 0 to mesh.Fvm.Mesh.nfaces - 1 do
    if mesh.Fvm.Mesh.face_cell2.(i) >= 0
       && Float.abs mesh.Fvm.Mesh.face_normal.(i * 2) > 0.5
    then f := i
  done;
  let f = !f in
  check_bool "found interior vertical face" true (f >= 0);
  let n1 = compile [] "NORMAL_1" in
  env.Finch.Eval.face <- f;
  env.Finch.Eval.nsign <- 1.;
  let from_owner = n1 env in
  env.Finch.Eval.nsign <- -1.;
  let from_neighbour = n1 env in
  Tutil.check_close "normals flip" (-.from_owner) from_neighbour;
  Tutil.check_close "unit" 1. (Float.abs from_owner)

let test_field_access_sides () =
  let env = make_env () in
  let fld = Fvm.Field.create ~name:"u" ~ncells:6 ~ncomp:1 () in
  Fvm.Field.init fld (fun c _ -> float_of_int (10 * c));
  let bindings = [ "u", Finch.Eval.Bfield (fld, []) ] in
  (* bare identifiers are promoted to references by the pipeline's
     resolve_vars; at this level we construct the reference directly *)
  let here = Finch.Eval.compile bindings (Expr.ref_ "u" []) in
  env.Finch.Eval.cell <- 2;
  Tutil.check_close "Here reads cell" 20. (here env);
  let cell2 =
    Finch.Eval.compile bindings (Expr.ref_ ~side:Expr.Cell2 "u" [])
  in
  env.Finch.Eval.cell2 <- 5;
  Tutil.check_close "Cell2 reads neighbour" 50. (cell2 env);
  (* ghost access on the boundary *)
  env.Finch.Eval.cell2 <- -1;
  env.Finch.Eval.ghost <- Some (fun name comp ->
      check_bool "ghost var name" true (name = "u");
      check_bool "ghost comp" true (comp = 0);
      99.);
  Tutil.check_close "ghost value" 99. (cell2 env);
  env.Finch.Eval.ghost <- None;
  (match cell2 env with
   | exception Finch.Eval.Compile_error _ -> ()
   | _ -> Alcotest.fail "missing ghost accessor must raise")

let test_indexed_field () =
  let env = make_env () in
  let fld = Fvm.Field.create ~name:"I" ~ncells:6 ~ncomp:12 () in
  Fvm.Field.init fld (fun c k -> float_of_int ((100 * c) + k));
  (* layout: d (extent 4, stride 1), b (extent 3, stride 4) *)
  let layout = [ "d", 1, 1; "b", 1, 4 ] in
  let bindings = [ "I", Finch.Eval.Bfield (fld, layout) ] in
  let g = compile bindings "I[d,b]" in
  env.Finch.Eval.cell <- 1;
  !(Finch.Eval.ival env "d") |> ignore;
  Finch.Eval.ival env "d" := 2;
  Finch.Eval.ival env "b" := 1;
  Tutil.check_close "comp = d + b*4" (float_of_int (100 + 2 + 4)) (g env);
  (* constant and shifted indices *)
  let gc = compile bindings "I[3,b]" in
  Finch.Eval.ival env "b" := 0;
  Tutil.check_close "Iconst is 1-based" (float_of_int (100 + 2)) (gc env);
  let gs = compile bindings "I[d+1,b]" in
  Finch.Eval.ival env "d" := 0;
  Tutil.check_close "Ishift" (float_of_int (100 + 1)) (gs env)

let test_coefficient_kinds () =
  let env = make_env () in
  let bindings =
    [ "k", Finch.Eval.Bcoef_const 2.5;
      "arr", Finch.Eval.Bcoef_arr ([| 10.; 20.; 30. |], "b", 1);
      "fn", Finch.Eval.Bcoef_fn (fun pos -> pos.(0) +. pos.(1)) ]
  in
  Tutil.check_close "const" 2.5 (compile bindings "k" env);
  Finch.Eval.ival env "b" := 2;
  Tutil.check_close "array by index var" 30. (compile bindings "arr[b]" env);
  Tutil.check_close "array by literal" 10. (compile bindings "arr[1]" env);
  env.Finch.Eval.cell <- 0; (* centroid (0.5, 0.5) *)
  Tutil.check_close "space function" 1.0 (compile bindings "fn" env)

let test_compile_errors () =
  let sink : Finch.Eval.compiled -> unit = fun _ -> () in
  let expect s bindings =
    match sink (compile bindings s) with
    | exception Finch.Eval.Compile_error _ -> ()
    | () -> Alcotest.failf "expected Compile_error for %s" s
  in
  expect "unknown_thing" [];
  expect "arr" [ "arr", Finch.Eval.Bcoef_arr ([| 1. |], "b", 1) ];
  expect "arr[d,b]" [ "arr", Finch.Eval.Bcoef_arr ([| 1. |], "b", 1) ];
  let fld = Fvm.Field.create ~name:"u" ~ncells:6 ~ncomp:2 () in
  expect "u" [ "u", Finch.Eval.Bfield (fld, [ "d", 1, 1 ]) ];
  (* unexpanded operators must be rejected at compile time *)
  expect "surface(u)" [];
  (* unknown index inside a reference *)
  (match
     let env = make_env () in
     let g =
       Finch.Eval.compile
         [ "I", Finch.Eval.Bfield (fld, [ "zz", 1, 1 ]) ]
         (Parser.parse "I[zz]")
     in
     g env
   with
   | exception Finch.Eval.Compile_error _ -> ()
   | _ -> Alcotest.fail "unknown index must raise")

let test_cost_estimation () =
  let c1 = Finch.Eval.cost (Parser.parse "a + b") in
  check_bool "one flop" true (c1.Finch.Eval.flops = 1.);
  let c2 = Finch.Eval.cost (Parser.parse "I[d,b] * vg[b] + Io[b]") in
  check_bool "three loads" true (c2.Finch.Eval.loads = 3);
  check_bool "two flops" true (c2.Finch.Eval.flops = 2.);
  let c3 = Finch.Eval.cost (Parser.parse "exp(a)") in
  check_bool "transcendental weighted" true (c3.Finch.Eval.flops >= 8.)

let test_compiled_matches_interpreter () =
  (* the closure compiler and the reference interpreter agree on the BTE
     volume expression *)
  let env = make_env () in
  let fio = Fvm.Field.create ~name:"Io" ~ncells:6 ~ncomp:3 () in
  let fi = Fvm.Field.create ~name:"I" ~ncells:6 ~ncomp:12 () in
  let fbeta = Fvm.Field.create ~name:"beta" ~ncells:6 ~ncomp:3 () in
  let rnd = Tutil.lcg 42 in
  Fvm.Field.init fio (fun _ _ -> rnd ());
  Fvm.Field.init fi (fun _ _ -> rnd ());
  Fvm.Field.init fbeta (fun _ _ -> rnd () +. 0.5);
  let bindings =
    [ "Io", Finch.Eval.Bfield (fio, [ "b", 1, 1 ]);
      "I", Finch.Eval.Bfield (fi, [ "d", 1, 1; "b", 1, 4 ]);
      "beta", Finch.Eval.Bfield (fbeta, [ "b", 1, 1 ]) ]
  in
  let e = Parser.parse "(Io[b] - I[d,b]) * beta[b]" in
  let g = Finch.Eval.compile bindings e in
  for cell = 0 to 5 do
    for d = 0 to 3 do
      for b = 0 to 2 do
        env.Finch.Eval.cell <- cell;
        Finch.Eval.ival env "d" := d;
        Finch.Eval.ival env "b" := b;
        let expected =
          (Fvm.Field.get fio cell b -. Fvm.Field.get fi cell (d + (b * 4)))
          *. Fvm.Field.get fbeta cell b
        in
        Tutil.check_close "closure vs direct" expected (g env)
      done
    done
  done

(* --- tape compiler ------------------------------------------------- *)

let bte_bindings () =
  let fio = Fvm.Field.create ~name:"Io" ~ncells:6 ~ncomp:3 () in
  let fi = Fvm.Field.create ~name:"I" ~ncells:6 ~ncomp:12 () in
  let fbeta = Fvm.Field.create ~name:"beta" ~ncells:6 ~ncomp:3 () in
  let rnd = Tutil.lcg 99 in
  Fvm.Field.init fio (fun _ _ -> rnd ());
  Fvm.Field.init fi (fun _ _ -> rnd ());
  Fvm.Field.init fbeta (fun _ _ -> rnd () +. 0.5);
  let bindings =
    [ "Io", Finch.Eval.Bfield (fio, [ "b", 1, 1 ]);
      "I", Finch.Eval.Bfield (fi, [ "d", 1, 1; "b", 1, 4 ]);
      "beta", Finch.Eval.Bfield (fbeta, [ "b", 1, 1 ]) ]
  in
  bindings, fi

let test_tape_matches_closure_exactly () =
  (* bit-identical results on the BTE volume expression over the full
     (cell, d, b) iteration space *)
  let bindings, _ = bte_bindings () in
  let e = Parser.parse "(Io[b] - I[d,b]) * beta[b] + exp(-beta[b]*dt)" in
  let g = Finch.Eval.compile bindings e in
  let t = Finch.Eval.compile_tape bindings e in
  let env = make_env () in
  Finch.Eval.bump_epoch env;
  for cell = 0 to 5 do
    env.Finch.Eval.cell <- cell;
    for b = 0 to 2 do
      Finch.Eval.ival env "b" := b;
      for d = 0 to 3 do
        Finch.Eval.ival env "d" := d;
        let vc = g env and vt = Finch.Eval.tape_run t env in
        if vc <> vt then
          Alcotest.failf "tape differs at cell=%d d=%d b=%d: %h vs %h" cell d b
            vc vt
      done
    done
  done

let test_tape_cse_reduces_ops () =
  (* repeated subterms compile to a single op *)
  let bindings = [ "a", Finch.Eval.Bcoef_const 1.5; "b", Finch.Eval.Bcoef_const 2.0 ] in
  let t = Finch.Eval.compile_tape bindings (Parser.parse "(a+b)*(a+b) + (a+b)") in
  (* leaves a and b, one add, one mul, one outer add: 5 ops for 11 nodes *)
  Alcotest.(check int) "CSE op count" 5 (Finch.Eval.tape_length t);
  let bindings2, _ = bte_bindings () in
  let t2 =
    Finch.Eval.compile_tape bindings2
      (Parser.parse "I[d,b]*beta[b] + Io[b]*beta[b]")
  in
  (* beta[b] loaded once: I, beta, mul, Io, mul, add *)
  Alcotest.(check int) "shared load op count" 6 (Finch.Eval.tape_length t2);
  (* the post-CSE static cost is below the tree cost *)
  let e = Parser.parse "(a+b)*(a+b) + (a+b)" in
  let tree = Finch.Eval.cost e in
  let tape = Finch.Eval.tape_cost (Finch.Eval.compile_tape bindings e) in
  check_bool "tape flops below tree flops" true
    (tape.Finch.Eval.flops < tree.Finch.Eval.flops)

let test_tape_hoists_invariant_ops () =
  (* with d as the innermost loop, the b-only subterms (Io[b], beta[b])
     execute once per (cell, b) instead of once per (cell, b, d) *)
  let bindings, _ = bte_bindings () in
  let e = Parser.parse "(Io[b] - I[d,b]) * beta[b]" in
  let t = Finch.Eval.compile_tape bindings e in
  let g = Finch.Eval.compile bindings e in
  let env = make_env () in
  Finch.Eval.bump_epoch env;
  for cell = 0 to 5 do
    env.Finch.Eval.cell <- cell;
    for b = 0 to 2 do
      Finch.Eval.ival env "b" := b;
      for d = 0 to 3 do
        Finch.Eval.ival env "d" := d;
        let vt = Finch.Eval.tape_run t env in
        if vt <> g env then Alcotest.fail "tape drifted from closure"
      done
    done
  done;
  let runs = Finch.Eval.tape_runs t in
  let len = Finch.Eval.tape_length t in
  let executed = Finch.Eval.tape_executed t in
  Alcotest.(check int) "runs counted" (6 * 3 * 4) runs;
  check_bool "some ops executed" true (executed >= len);
  check_bool
    (Printf.sprintf "invariant ops skipped (%d executed of %d possible)"
       executed (runs * len))
    true
    (executed < runs * len);
  Finch.Eval.tape_reset_stats t;
  Alcotest.(check int) "stats reset" 0 (Finch.Eval.tape_runs t)

let test_tape_epoch_invalidation () =
  (* mutating a field and bumping the epoch must invalidate cached
     registers; without the bump the cache contract does not cover it *)
  let bindings, fi = bte_bindings () in
  let e = Parser.parse "(Io[b] - I[d,b]) * beta[b]" in
  let t = Finch.Eval.compile_tape bindings e in
  let g = Finch.Eval.compile bindings e in
  let env = make_env () in
  Finch.Eval.bump_epoch env;
  env.Finch.Eval.cell <- 3;
  Finch.Eval.ival env "d" := 2;
  Finch.Eval.ival env "b" := 1;
  let v0 = Finch.Eval.tape_run t env in
  Tutil.check_close "initial agreement" (g env) v0;
  (* change the intensity field in place, as an executor step would *)
  Fvm.Field.set fi 3 (2 + 4) 123.456;
  Finch.Eval.bump_epoch env;
  let v1 = Finch.Eval.tape_run t env in
  if v1 = v0 then Alcotest.fail "stale register survived an epoch bump";
  Tutil.check_close "agreement after mutation" (g env) v1

(* property: the tape evaluator agrees bit-for-bit with the closure
   compiler on random expressions, including across repeated runs with
   cached registers *)
let prop_tape_matches_closure =
  let bindings, _ = bte_bindings () in
  let bindings =
    bindings
    @ [ "a", Finch.Eval.Bcoef_const 1.25;
        "b", Finch.Eval.Bcoef_const (-0.75);
        "k", Finch.Eval.Bcoef_const 2.0 ]
  in
  QCheck.Test.make ~name:"tape evaluator == closure evaluator" ~count:200
    Test_expr.arb_expr (fun e ->
      match Finch.Eval.compile bindings e with
      | exception Finch.Eval.Compile_error _ -> true
      | g ->
        let t = Finch.Eval.compile_tape bindings e in
        let env = make_env () in
        Finch.Eval.bump_epoch env;
        let same_at cell d b =
          env.Finch.Eval.cell <- cell;
          Finch.Eval.ival env "d" := d;
          Finch.Eval.ival env "b" := b;
          let vc = g env and vt = Finch.Eval.tape_run t env in
          vc = vt || (Float.is_nan vc && Float.is_nan vt)
        in
        (* sweep d innermost to exercise register caching, then revisit
           the first point to check nothing stale persists *)
        same_at 0 0 0 && same_at 0 1 0 && same_at 0 2 0 && same_at 1 2 1
        && same_at 1 3 2 && same_at 0 0 0)

(* property: the closure compiler agrees with the reference interpreter
   (Expr.eval) on random expressions over a shared vocabulary *)
let prop_compile_matches_eval =
  let mesh_p = Fvm.Mesh_gen.rectangle ~nx:2 ~ny:2 ~lx:2.0 ~ly:2.0 () in
  let fio = Fvm.Field.create ~name:"Io" ~ncells:4 ~ncomp:3 () in
  let fi = Fvm.Field.create ~name:"I" ~ncells:4 ~ncomp:12 () in
  let fbeta = Fvm.Field.create ~name:"beta" ~ncells:4 ~ncomp:3 () in
  let rnd = Tutil.lcg 7 in
  Fvm.Field.init fio (fun _ _ -> rnd () +. 0.1);
  Fvm.Field.init fi (fun _ _ -> rnd () +. 0.1);
  Fvm.Field.init fbeta (fun _ _ -> rnd () +. 0.1);
  let bindings =
    [ "Io", Finch.Eval.Bfield (fio, [ "b", 1, 1 ]);
      "I", Finch.Eval.Bfield (fi, [ "d", 1, 1; "b", 1, 4 ]);
      "beta", Finch.Eval.Bfield (fbeta, [ "b", 1, 1 ]);
      "a", Finch.Eval.Bcoef_const 1.25;
      "b", Finch.Eval.Bcoef_const (-0.75);
      "k", Finch.Eval.Bcoef_const 2.0 ]
  in
  let env =
    Finch.Eval.make_env ~mesh:mesh_p ~dt:(ref 0.25) ~time:(ref 0.)
      ~index_names:[ "d"; "b" ]
  in
  (* reference interpretation with identical semantics *)
  let env_sym = function
    | "dt" -> 0.25
    | "a" -> 1.25
    | "b" -> -0.75
    | "k" -> 2.0
    | s -> Alcotest.failf "sym %s" s
  in
  let env_ref name idx _side =
    let comp_of layout =
      List.fold_left2
        (fun acc (_, _lo, stride) iref ->
          match iref with
          | Expr.Ivar n -> acc + (!(Finch.Eval.ival env n) * stride)
          | Expr.Iconst k -> acc + ((k - 1) * stride)
          | Expr.Ishift (n, s) -> acc + ((!(Finch.Eval.ival env n) + s) * stride))
        0 layout idx
    in
    match name with
    | "Io" -> Fvm.Field.get fio env.Finch.Eval.cell (comp_of [ "b", 1, 1 ])
    | "I" ->
      Fvm.Field.get fi env.Finch.Eval.cell (comp_of [ "d", 1, 1; "b", 1, 4 ])
    | "beta" -> Fvm.Field.get fbeta env.Finch.Eval.cell (comp_of [ "b", 1, 1 ])
    | s -> Alcotest.failf "ref %s" s
  in
  QCheck.Test.make ~name:"closure compiler == reference interpreter"
    ~count:200 Test_expr.arb_expr (fun e ->
      (* restrict to the vocabulary both sides know: skip expressions with
         unknown entities by catching the compile error *)
      match Finch.Eval.compile bindings e with
      | exception Finch.Eval.Compile_error _ -> true
      | g ->
        env.Finch.Eval.cell <- 2;
        Finch.Eval.ival env "d" := 1;
        Finch.Eval.ival env "b" := 2;
        let v1 = g env in
        let v2 = Expr.eval ~env_sym ~env_ref e in
        Tutil.feq ~eps:1e-9 v1 v2
        || (Float.is_nan v1 && Float.is_nan v2)
        || Float.abs v2 > 1e14)

let suite =
  ( "eval",
    [
      Alcotest.test_case "special symbols" `Quick test_special_symbols;
      Alcotest.test_case "normals with sign" `Quick test_normals_with_sign;
      Alcotest.test_case "field access sides + ghost" `Quick test_field_access_sides;
      Alcotest.test_case "indexed field layouts" `Quick test_indexed_field;
      Alcotest.test_case "coefficient kinds" `Quick test_coefficient_kinds;
      Alcotest.test_case "compile errors" `Quick test_compile_errors;
      Alcotest.test_case "cost estimation" `Quick test_cost_estimation;
      Alcotest.test_case "closure compiler vs direct evaluation" `Quick
        test_compiled_matches_interpreter;
      Alcotest.test_case "tape == closure (bit-identical)" `Quick
        test_tape_matches_closure_exactly;
      Alcotest.test_case "tape CSE reduces op count" `Quick test_tape_cse_reduces_ops;
      Alcotest.test_case "tape hoists loop-invariant ops" `Quick
        test_tape_hoists_invariant_ops;
      Alcotest.test_case "tape epoch invalidation" `Quick test_tape_epoch_invalidation;
      QCheck_alcotest.to_alcotest prop_tape_matches_closure;
      QCheck_alcotest.to_alcotest prop_compile_matches_eval;
    ] )
