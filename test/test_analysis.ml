(* Static analyzer and sanitizer tests: the seeded-defect fixtures
   report exactly their expected codes, every shipped scenario lints
   clean under every backend spec, findings feed the metrics registry,
   and the runtime sanitizer is bit-identical on defect-free programs
   while counting reads of poisoned storage. *)

module A = Finch_analysis

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---- seeded-defect fixtures: exact code multisets ---------------- *)

let test_fixtures_exact_codes () =
  List.iter
    (fun (f : A.Fixtures.fixture) ->
      let expect, found = A.Fixtures.check f in
      Alcotest.(check (list string))
        (f.A.Fixtures.fname ^ ": " ^ f.A.Fixtures.descr)
        (List.map A.Finding.id expect)
        (List.map A.Finding.id found))
    A.Fixtures.all

let test_catalogue_roundtrip () =
  List.iter
    (fun c ->
      match A.Finding.of_id (A.Finding.id c) with
      | Some c' -> check_bool ("round-trip " ^ A.Finding.id c) true (c = c')
      | None -> Alcotest.failf "id %s does not round-trip" (A.Finding.id c))
    A.Finding.catalogue;
  check_bool "unknown id rejected" true (A.Finding.of_id "A999" = None);
  (* the fixtures must exercise a substantial slice of the catalogue *)
  let covered =
    List.sort_uniq compare
      (List.concat_map (fun f -> f.A.Fixtures.expect) A.Fixtures.all)
  in
  check_bool "at least 6 distinct defect classes seeded" true
    (List.length covered >= 6);
  check_int "every catalogue code has a fixture"
    (List.length A.Finding.catalogue)
    (List.length covered)

let test_ignore_codes_filter () =
  (* suppressing a fixture's code yields an empty report *)
  let f =
    List.find
      (fun f -> f.A.Fixtures.fname = "missing-phase")
      A.Fixtures.all
  in
  let r =
    A.Driver.check_ir ~ignore_codes:[ A.Finding.Missing_phase ]
      f.A.Fixtures.fctx f.A.Fixtures.ir
  in
  check_int "suppressed" 0 (List.length r.A.Driver.findings)

(* ---- zero findings for every scenario x backend x overlap -------- *)

let backends =
  [ "serial"; "threads:2"; "bands:2"; "cells:2"; "cells:3"; "cells:4";
    "hybrid:2x2"; "gpu"; "gpu:a6000:2"; "gpu:a6000:2x2" ]

let test_scenarios_lint_clean () =
  List.iter
    (fun (sname, mk) ->
      List.iter
        (fun spec ->
          let tgt =
            match Finch.Config.target_of_string spec with
            | Ok t -> t
            | Error e -> Alcotest.fail e
          in
          List.iter
            (fun overlap ->
              let built = mk () in
              let p = built.Bte.Setup.problem in
              Finch.Problem.set_target p tgt;
              Finch.Problem.set_overlap p overlap;
              let r = A.Driver.check_problem ~post_io:Bte.Setup.post_io p in
              if r.A.Driver.findings <> [] then begin
                A.Driver.pp_report stdout r;
                Alcotest.failf "%s %s%s: %d findings (expected none)" sname
                  spec
                  (if overlap then " +overlap" else "")
                  (List.length r.A.Driver.findings)
              end)
            [ false; true ])
        backends)
    [ "hotspot", (fun () -> Bte.Setup.build Bte.Setup.small_hotspot);
      "corner", fun () -> Bte.Setup.build_corner Bte.Setup.small_corner ]

(* ---- findings are counted in the metrics registry ---------------- *)

let test_findings_feed_metrics () =
  Prt.Metrics.enable ();
  Prt.Metrics.reset_all ();
  (* a fixture with one error and one with one warning *)
  let by name = List.find (fun f -> f.A.Fixtures.fname = name) A.Fixtures.all in
  ignore (A.Fixtures.check (by "undefined-read"));
  ignore (A.Fixtures.check (by "missing-phase"));
  let c name = Prt.Metrics.value (Prt.Metrics.counter name) in
  check_int "analysis.errors" 1 (c "analysis.errors");
  check_int "analysis.warnings" 1 (c "analysis.warnings");
  Prt.Metrics.reset_all ();
  Prt.Metrics.disable ()

(* ---- runtime sanitizer ------------------------------------------- *)

(* the tiny hotspot used across the solver tests *)
let tiny =
  {
    Bte.Setup.small_hotspot with
    Bte.Setup.nx = 10;
    ny = 10;
    lx = 2e-6;
    ly = 2e-6;
    ndirs = 4;
    n_la_bands = 4;
    hot_radius = 0.6e-6;
    hot_center = 1e-6;
    nsteps = 8;
  }

let solve_with target =
  let built = Bte.Setup.build tiny in
  Finch.Problem.set_target built.Bte.Setup.problem target;
  Finch.Solve.solve ~band_index:"b" built.Bte.Setup.problem

let test_sanitizer_bit_identical () =
  (* on defect-free programs the sanitized run must produce bit-identical
     fields and count zero poison reads *)
  List.iter
    (fun (label, target) ->
      let o1 = solve_with target in
      let reads = ref (-1) in
      let o2 =
        A.Sanitize.with_sanitizer (fun () ->
            let o = solve_with target in
            reads := A.Sanitize.poison_reads ();
            o)
      in
      check_int (label ^ ": no poison reads") 0 !reads;
      check_bool (label ^ ": sanitizer off afterwards") false
        (A.Sanitize.enabled ());
      List.iter
        (fun name ->
          let d =
            Fvm.Field.max_abs_diff (Finch.Solve.field o1 name)
              (Finch.Solve.field o2 name)
          in
          if d > 0. then
            Alcotest.failf "%s: sanitized %s differs by %g" label name d)
        [ "I"; "T" ])
    [ "serial", Finch.Config.Cpu Finch.Config.Serial;
      "cells:2", Finch.Config.Cpu (Finch.Config.Cell_parallel 2);
      "gpu", Finch.Config.Gpu { spec = Gpu_sim.Spec.a6000; devices = 1; ranks = 1 };
      "gpu:2", Finch.Config.Gpu { spec = Gpu_sim.Spec.a6000; devices = 1; ranks = 2 } ]

let test_sanitizer_detects_poison () =
  A.Sanitize.with_sanitizer (fun () ->
      (* ghost cells poisoned, then "read" by a commit-style scan *)
      let f = Fvm.Field.create ~name:"u" ~ncells:8 ~ncomp:2 () in
      Fvm.Field.fill f 1.;
      Fvm.Field.poison_cells f [| 5; 6 |];
      check_bool "poison is NaN" true (Fvm.Field.is_poison (Fvm.Field.get f 5 0));
      check_int "untouched cells stay clean" 0
        (Fvm.Field.count_poison_cells f [| 0; 1; 2 |]);
      (* counts poisoned values: 2 cells x 2 components *)
      let leaked = Fvm.Field.count_poison_cells f [| 4; 5; 6; 7 |] in
      check_int "poisoned values counted" 4 leaked;
      Fvm.Field.record_poison leaked;
      check_int "reads recorded" 4 (A.Sanitize.poison_reads ());
      (* fresh device buffers are poisoned too while the mode is on *)
      let dev = Gpu_sim.Memory.create_device Gpu_sim.Spec.a6000 in
      let buf = Gpu_sim.Memory.alloc dev ~label:"t" ~size:4 in
      check_bool "device alloc poisoned" true
        (Float.is_nan buf.Gpu_sim.Memory.device_data.{0}))

(* ---- communication-schedule plans -------------------------------- *)

let target_of spec =
  match Finch.Config.target_of_string spec with
  | Ok t -> t
  | Error e -> Alcotest.fail e

let problem_on spec =
  let built = Bte.Setup.build tiny in
  let p = built.Bte.Setup.problem in
  Finch.Problem.set_target p (target_of spec);
  p

let test_comm_plan_of_problem () =
  (* partitioned targets carry a plan; single-address-space ones don't *)
  List.iter
    (fun spec ->
      check_bool (spec ^ ": no plan") true
        (A.Comm.plan_of_problem (problem_on spec) = None))
    [ "serial"; "threads:2"; "bands:2"; "hybrid:2x2"; "gpu"; "gpu:a6000:2" ];
  (match A.Comm.plan_of_problem (problem_on "cells:3") with
   | Some (A.Comm.Ranks halo) ->
     check_int "cells:3 halo over 3 ranks" 3 halo.Fvm.Halo.nranks
   | _ -> Alcotest.fail "cells:3: expected a Ranks plan");
  match A.Comm.plan_of_problem (problem_on "gpu:a6000:2x2") with
  | Some (A.Comm.Grid { ndevices; tile_halo }) ->
    check_int "2x2 grid devices per rank" 2 ndevices;
    check_int "tile halo over 2 tiles" 2 tile_halo.Fvm.Halo.nranks
  | _ -> Alcotest.fail "gpu:a6000:2x2: expected a Grid plan"

let test_comm_elaborate () =
  let p = problem_on "cells:3" in
  let plan =
    match A.Comm.plan_of_problem p with
    | Some pl -> pl
    | None -> Alcotest.fail "cells:3: expected a plan"
  in
  let note = Finch.Ir.meta ~phase:Finch.Ir.Ph_communication () in
  let tree =
    Finch.Ir.Seq [ Finch.Ir.Halo_exchange { vars = [ "u"; "s" ]; note } ]
  in
  let sched = A.Comm.elaborate plan tree in
  check_int "one round per exchanged variable" 2
    (List.length sched.A.Comm.sc_rounds);
  check_int "no D2d pushes in a CPU tree" 0
    (List.length sched.A.Comm.sc_pushes);
  List.iter
    (fun (rd : A.Comm.round) ->
      check_bool "send/recv halves mirror each other" true
        (rd.A.Comm.rd_sends = rd.A.Comm.rd_recvs);
      check_bool "elaborated rounds use the runtime posting order" true
        (rd.A.Comm.rd_recv_before_send = []);
      (* every channel of the plan appears as a message *)
      List.iter
        (fun (src, dst, ncells) ->
          check_bool
            (Printf.sprintf "channel %d->%d present" src dst)
            true
            (List.exists
               (fun (e : A.Comm.entry) ->
                 e.A.Comm.e_src = src && e.A.Comm.e_dst = dst
                 && Array.length e.A.Comm.e_cells = ncells)
               rd.A.Comm.rd_sends))
        (Fvm.Halo.channels
           (match plan with
            | A.Comm.Ranks h -> h
            | A.Comm.Grid { tile_halo; _ } -> tile_halo)))
    sched.A.Comm.sc_rounds;
  (* an elaborated schedule is self-consistent: matching, deadlock and
     coverage all pass.  The toy tree never reads the exchanged ghosts,
     so the only findings are the two redundancy warnings — exactly one
     per exchanged variable *)
  let ctx = A.Ctx.of_problem p in
  Alcotest.(check (list string))
    "elaborated schedule verifies clean (bar dead-ghost warnings)"
    [ "A031"; "A031" ]
    (List.map
       (fun (f : A.Finding.t) -> A.Finding.id f.A.Finding.code)
       (A.Comm.run ~comm:(A.Comm.Elaborate plan) ctx tree))

let test_sanitizer_alloc_clean_when_off () =
  check_bool "sanitizer off" false (A.Sanitize.enabled ());
  let dev = Gpu_sim.Memory.create_device Gpu_sim.Spec.a6000 in
  let buf = Gpu_sim.Memory.alloc dev ~label:"t" ~size:4 in
  check_bool "device alloc zeroed" true (buf.Gpu_sim.Memory.device_data.{0} = 0.)

let suite =
  ( "analysis",
    [
      Alcotest.test_case "fixtures report exact codes" `Quick
        test_fixtures_exact_codes;
      Alcotest.test_case "catalogue round-trips" `Quick
        test_catalogue_roundtrip;
      Alcotest.test_case "ignore_codes suppression" `Quick
        test_ignore_codes_filter;
      Alcotest.test_case "scenarios lint clean on all backends" `Quick
        test_scenarios_lint_clean;
      Alcotest.test_case "findings feed metrics" `Quick
        test_findings_feed_metrics;
      Alcotest.test_case "sanitizer bit-identical when clean" `Quick
        test_sanitizer_bit_identical;
      Alcotest.test_case "sanitizer counts poison reads" `Quick
        test_sanitizer_detects_poison;
      Alcotest.test_case "alloc clean when sanitizer off" `Quick
        test_sanitizer_alloc_clean_when_off;
      Alcotest.test_case "comm plan per target" `Quick
        test_comm_plan_of_problem;
      Alcotest.test_case "comm schedule elaboration" `Quick
        test_comm_elaborate;
    ] )
