(* Partitioner and halo-plan tests. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_blocks_even () =
  let p = Fvm.Partition.blocks ~nitems:12 ~nparts:4 in
  Alcotest.(check (array int)) "counts" [| 3; 3; 3; 3 |] (Fvm.Partition.counts p);
  Tutil.check_close "imbalance" 1.0 (Fvm.Partition.imbalance p)

let test_blocks_uneven () =
  let p = Fvm.Partition.blocks ~nitems:10 ~nparts:3 in
  Alcotest.(check (array int)) "counts" [| 4; 3; 3 |] (Fvm.Partition.counts p);
  (* blocks are contiguous *)
  let owner = Array.init 10 (Fvm.Partition.owner p) in
  let sorted = Array.copy owner in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "contiguous" sorted owner

let test_block_range_consistency () =
  for nitems = 1 to 30 do
    for nparts = 1 to min nitems 8 do
      let p = Fvm.Partition.blocks ~nitems ~nparts in
      let covered = ref 0 in
      for r = 0 to nparts - 1 do
        let off, len = Fvm.Partition.block_range ~nitems ~nparts r in
        covered := !covered + len;
        for i = off to off + len - 1 do
          check_int "owner matches range" r (Fvm.Partition.owner p i)
        done
      done;
      check_int "ranges cover" nitems !covered
    done
  done

let test_blocks_errors () =
  Alcotest.check_raises "too many parts"
    (Invalid_argument "Partition.blocks: more parts than items") (fun () ->
      ignore (Fvm.Partition.blocks ~nitems:3 ~nparts:5))

let test_rcb_balance () =
  let m = Fvm.Mesh_gen.rectangle ~nx:12 ~ny:12 ~lx:1.0 ~ly:1.0 () in
  List.iter
    (fun nparts ->
      let p = Fvm.Partition.rcb_mesh m ~nparts in
      check_int "nparts" nparts (Fvm.Partition.nparts p);
      check_int "covers all cells" m.Fvm.Mesh.ncells (Fvm.Partition.nitems p);
      check_bool
        (Printf.sprintf "balance at %d" nparts)
        true
        (Fvm.Partition.imbalance p < 1.35);
      (* every rank owns at least one cell *)
      Array.iter (fun c -> check_bool "nonempty" true (c > 0)) (Fvm.Partition.counts p))
    [ 1; 2; 3; 4; 7; 8; 16 ]

let test_rcb_locality () =
  (* 2 parts of a wide strip must split along x *)
  let m = Fvm.Mesh_gen.rectangle ~nx:8 ~ny:2 ~lx:8.0 ~ly:1.0 () in
  let p = Fvm.Partition.rcb_mesh m ~nparts:2 in
  for j = 0 to 1 do
    for i = 0 to 3 do
      check_int "left half rank 0" 0 (Fvm.Partition.owner p ((j * 8) + i))
    done;
    for i = 4 to 7 do
      check_int "right half rank 1" 1 (Fvm.Partition.owner p ((j * 8) + i))
    done
  done

let test_edge_cut () =
  let m = Fvm.Mesh_gen.rectangle ~nx:4 ~ny:4 ~lx:1.0 ~ly:1.0 () in
  let p2 = Fvm.Partition.rcb_mesh m ~nparts:2 in
  (* a straight cut of a 4x4 grid crosses exactly 4 faces *)
  check_int "straight cut" 4 (Fvm.Partition.edge_cut m p2);
  let p1 = Fvm.Partition.rcb_mesh m ~nparts:1 in
  check_int "no cut for 1 part" 0 (Fvm.Partition.edge_cut m p1)

let test_rank_adjacency () =
  let m = Fvm.Mesh_gen.rectangle ~nx:4 ~ny:4 ~lx:1.0 ~ly:1.0 () in
  let p = Fvm.Partition.rcb_mesh m ~nparts:4 in
  let adj = Fvm.Partition.rank_adjacency m p in
  Array.iteri
    (fun r ns ->
      check_bool "has neighbours" true (List.length ns >= 1);
      List.iter
        (fun r' -> check_bool "symmetric" true (List.mem r adj.(r')))
        ns)
    adj

let test_halo_symmetry () =
  let m = Fvm.Mesh_gen.rectangle ~nx:6 ~ny:6 ~lx:1.0 ~ly:1.0 () in
  let p = Fvm.Partition.rcb_mesh m ~nparts:4 in
  let h = Fvm.Halo.build m p in
  (* each send's cells are owned by the sender *)
  for r = 0 to 3 do
    List.iter
      (fun (e : Fvm.Halo.exchange) ->
        check_int "send originates at rank" r e.Fvm.Halo.from_rank;
        Array.iter
          (fun c -> check_int "sender owns sent cells" r (Fvm.Partition.owner p c))
          e.Fvm.Halo.cells)
      (Fvm.Halo.sends_of h r)
  done;
  (* total send = total recv *)
  let sends = ref 0 and recvs = ref 0 in
  for r = 0 to 3 do
    sends := !sends + Fvm.Halo.send_count h r;
    recvs := !recvs + Fvm.Halo.recv_count h r
  done;
  check_int "send/recv totals" !sends !recvs;
  (* ghosts of rank r are exactly the cells adjacent to r across the cut *)
  for r = 0 to 3 do
    Array.iter
      (fun g -> check_bool "ghost not owned" true (Fvm.Partition.owner p g <> r))
      h.Fvm.Halo.ghosts.(r)
  done

let test_halo_bytes () =
  let m = Fvm.Mesh_gen.rectangle ~nx:4 ~ny:2 ~lx:1.0 ~ly:1.0 () in
  let p = Fvm.Partition.blocks ~nitems:8 ~nparts:2 in
  let h = Fvm.Halo.build m p in
  (* the 4x2 grid split into two 4-cell halves: the cut crosses ... owner by
     block index: cells 0..3 rank 0 (= bottom row), 4..7 rank 1 (top row):
     4 cut faces, 4 interface cells each side *)
  check_int "send count" 4 (Fvm.Halo.send_count h 0);
  check_int "recv count" 4 (Fvm.Halo.recv_count h 0);
  check_int "bytes per round" (8 * 4 * 2 * 3)
    (Fvm.Halo.bytes_per_round h 0 ~ncomp:3 ~bytes_per:8);
  Alcotest.(check (list int)) "neighbours" [ 1 ] (Fvm.Halo.neighbour_ranks h 0)

let test_halo_rank_views () =
  let m = Fvm.Mesh_gen.rectangle ~nx:6 ~ny:5 ~lx:1.0 ~ly:1.0 () in
  let p = Fvm.Partition.rcb_mesh m ~nparts:4 in
  let h = Fvm.Halo.build m p in
  for r = 0 to 3 do
    (* rank-centric views agree with the aggregate counters *)
    let total l =
      List.fold_left (fun acc (e : Fvm.Halo.exchange) -> acc + Array.length e.Fvm.Halo.cells) 0 l
    in
    check_int "sends_of matches send_count" (Fvm.Halo.send_count h r)
      (total (Fvm.Halo.sends_of h r));
    check_int "recvs_of matches recv_count" (Fvm.Halo.recv_count h r)
      (total (Fvm.Halo.recvs_of h r));
    (* recvs_of cells are exactly the rank's ghosts *)
    let recv_cells =
      List.concat_map
        (fun (e : Fvm.Halo.exchange) -> Array.to_list e.Fvm.Halo.cells)
        (Fvm.Halo.recvs_of h r)
      |> List.sort_uniq compare
    in
    let ghosts = Array.to_list h.Fvm.Halo.ghosts.(r) |> List.sort_uniq compare in
    Alcotest.(check (list int)) "recvs_of covers ghosts" ghosts recv_cells;
    (* peer ordering: sends by destination, recvs by source *)
    let rec ascending = function
      | a :: b :: tl -> a < b && ascending (b :: tl)
      | _ -> true
    in
    check_bool "sends ordered by destination" true
      (ascending (List.map (fun e -> e.Fvm.Halo.to_rank) (Fvm.Halo.sends_of h r)));
    check_bool "recvs ordered by source" true
      (ascending (List.map (fun e -> e.Fvm.Halo.from_rank) (Fvm.Halo.recvs_of h r)));
    (* every send of r appears as a receive on its destination *)
    List.iter
      (fun (e : Fvm.Halo.exchange) ->
        check_bool "send mirrored at receiver" true
          (List.exists
             (fun (e' : Fvm.Halo.exchange) ->
               e'.Fvm.Halo.from_rank = r && e'.Fvm.Halo.cells = e.Fvm.Halo.cells)
             (Fvm.Halo.recvs_of h e.Fvm.Halo.to_rank)))
      (Fvm.Halo.sends_of h r)
  done

let test_split_cells () =
  let m = Fvm.Mesh_gen.rectangle ~nx:8 ~ny:6 ~lx:1.0 ~ly:1.0 () in
  let p = Fvm.Partition.rcb_mesh m ~nparts:4 in
  let h = Fvm.Halo.build m p in
  for r = 0 to 3 do
    let owned =
      Array.of_list
        (List.filter
           (fun c -> Fvm.Partition.owner p c = r)
           (List.init m.Fvm.Mesh.ncells Fun.id))
    in
    let interior, frontier = Fvm.Halo.split_cells h r ~owned in
    check_int "partition preserves size"
      (Array.length owned)
      (Array.length interior + Array.length frontier);
    (* disjoint, and together they are exactly [owned] *)
    let merged = Array.append interior frontier in
    Array.sort compare merged;
    let sorted_owned = Array.copy owned in
    Array.sort compare sorted_owned;
    Alcotest.(check (array int)) "interior + frontier = owned" sorted_owned merged;
    (* frontier cells are exactly the owned cells some neighbour needs *)
    let fc = Fvm.Halo.frontier_cells h r in
    Array.iter
      (fun c -> check_bool "frontier cell is exported" true (Array.mem c fc))
      frontier;
    Array.iter
      (fun c -> check_bool "interior cell not exported" false (Array.mem c fc))
      interior;
    check_bool "nonempty frontier between ranks" true (Array.length frontier > 0)
  done

let test_halo_async_exchange () =
  (* start_exchange/finish_exchange under the Spmd runtime delivers the
     owner's values into every ghost cell, with multiple components *)
  let m = Fvm.Mesh_gen.rectangle ~nx:6 ~ny:4 ~lx:1.0 ~ly:1.0 () in
  let nranks = 3 in
  let p = Fvm.Partition.rcb_mesh m ~nparts:nranks in
  let h = Fvm.Halo.build m p in
  let ncomp = 2 in
  let fields =
    Array.init nranks (fun r ->
        let f =
          Fvm.Field.create ~name:"u" ~ncells:m.Fvm.Mesh.ncells ~ncomp ()
        in
        Fvm.Field.init f (fun cell comp ->
            if Fvm.Partition.owner p cell = r then
              float_of_int (((r * 1000) + cell) * 10 + comp)
            else -1.);
        f)
  in
  Prt.Spmd.run ~nranks (fun r ->
      let ses = Fvm.Halo.start_exchange h ~rank:r fields.(r) in
      (* interior work while messages are in flight must not disturb them *)
      let owned =
        Array.of_list
          (List.filter
             (fun c -> Fvm.Partition.owner p c = r)
             (List.init m.Fvm.Mesh.ncells Fun.id))
      in
      let interior, _ = Fvm.Halo.split_cells h r ~owned in
      Array.iter
        (fun c ->
          for k = 0 to ncomp - 1 do
            Fvm.Field.set fields.(r) c k (Fvm.Field.get fields.(r) c k)
          done)
        interior;
      Fvm.Halo.finish_exchange ses fields.(r));
  for r = 0 to nranks - 1 do
    Array.iter
      (fun g ->
        let owner = Fvm.Partition.owner p g in
        for comp = 0 to ncomp - 1 do
          Tutil.check_close "ghost holds owner value"
            (float_of_int (((owner * 1000) + g) * 10 + comp))
            (Fvm.Field.get fields.(r) g comp)
        done)
      h.Fvm.Halo.ghosts.(r)
  done

let prop_rcb_covers =
  QCheck.Test.make ~name:"rcb covers and balances random grids" ~count:30
    QCheck.(triple (int_range 2 10) (int_range 2 10) (int_range 1 6))
    (fun (nx, ny, nparts) ->
      let nparts = min nparts (nx * ny) in
      let m = Fvm.Mesh_gen.rectangle ~nx ~ny ~lx:1.0 ~ly:1.0 () in
      let p = Fvm.Partition.rcb_mesh m ~nparts in
      let counts = Fvm.Partition.counts p in
      Array.fold_left ( + ) 0 counts = nx * ny
      && Array.for_all (fun c -> c > 0) counts)

let prop_halo_exchange_delivers =
  (* property: after one exchange round, every rank's ghost copies equal
     the owner's values, for random grids and part counts *)
  QCheck.Test.make ~name:"halo exchange delivers owner values" ~count:25
    QCheck.(triple (int_range 3 8) (int_range 3 8) (int_range 2 5))
    (fun (nx, ny, nparts) ->
      let m = Fvm.Mesh_gen.rectangle ~nx ~ny ~lx:1.0 ~ly:1.0 () in
      let nparts = min nparts m.Fvm.Mesh.ncells in
      let p = Fvm.Partition.rcb_mesh m ~nparts in
      let h = Fvm.Halo.build m p in
      (* per-rank local array: owner cells carry rank*1000+cell, others 0 *)
      let local =
        Array.init nparts (fun r ->
            Array.init m.Fvm.Mesh.ncells (fun c ->
                if Fvm.Partition.owner p c = r then
                  float_of_int ((r * 1000) + c)
                else 0.))
      in
      for r = 0 to nparts - 1 do
        List.iter
          (fun (e : Fvm.Halo.exchange) ->
            Array.iter
              (fun cell -> local.(e.Fvm.Halo.to_rank).(cell) <- local.(r).(cell))
              e.Fvm.Halo.cells)
          (Fvm.Halo.sends_of h r)
      done;
      (* now each rank must see correct values for all its ghosts *)
      let ok = ref true in
      for r = 0 to nparts - 1 do
        Array.iter
          (fun g ->
            let owner = Fvm.Partition.owner p g in
            if local.(r).(g) <> float_of_int ((owner * 1000) + g) then ok := false)
          h.Fvm.Halo.ghosts.(r)
      done;
      !ok)

let test_decomp2d_build () =
  let m = Fvm.Mesh_gen.rectangle ~nx:10 ~ny:10 ~lx:1.0 ~ly:1.0 () in
  let d = Fvm.Decomp2d.build m ~ndevices:4 ~nranks:3 in
  check_int "ranks" 3 d.Fvm.Decomp2d.nranks;
  check_int "devices" 4 d.Fvm.Decomp2d.ndevices;
  (* every cell owned by exactly one device tile *)
  let seen = Array.make m.Fvm.Mesh.ncells 0 in
  for g = 0 to 3 do
    Array.iter (fun c -> seen.(c) <- seen.(c) + 1) (Fvm.Decomp2d.owned_cells d g)
  done;
  check_bool "tiles partition the cells" true (Array.for_all (( = ) 1) seen);
  (* band slices tile the band axis contiguously *)
  let nbands = 7 in
  let covered = ref 0 in
  for r = 0 to 2 do
    let off, len = Fvm.Decomp2d.band_range d ~nbands r in
    check_int "contiguous band blocks" !covered off;
    covered := !covered + len
  done;
  check_int "band slices cover" nbands !covered;
  (match Fvm.Decomp2d.build m ~ndevices:0 ~nranks:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "ndevices=0 should raise");
  match Fvm.Decomp2d.build m ~ndevices:1 ~nranks:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "nranks=0 should raise"

let test_decomp2d_d2d_edges () =
  let m = Fvm.Mesh_gen.rectangle ~nx:8 ~ny:8 ~lx:1.0 ~ly:1.0 () in
  let d = Fvm.Decomp2d.build m ~ndevices:4 ~nranks:1 in
  let edges = Fvm.Decomp2d.d2d_edges d in
  check_bool "tiled grid has ghost edges" true (edges <> []);
  let owner c = Fvm.Partition.owner d.Fvm.Decomp2d.part c in
  List.iter
    (fun (src, dst, cells) ->
      check_bool "edge endpoints differ" true (src <> dst);
      Array.iter
        (fun c ->
          check_int "pushed cells are owned by src" src (owner c);
          check_bool "pushed cells are ghosts on dst" true
            (Array.mem c d.Fvm.Decomp2d.halo.Fvm.Halo.ghosts.(dst)))
        cells)
    edges;
  (* interface_cells is exactly the summed edge payload *)
  let total =
    List.fold_left (fun acc (_, _, cs) -> acc + Array.length cs) 0 edges
  in
  check_int "interface cell count" total (Fvm.Decomp2d.interface_cells d)

let test_decomp2d_cell_runs () =
  (* adjacent cells merge into packed element runs under Cell_major *)
  let runs = Fvm.Decomp2d.cell_runs ~cells:[| 5; 3; 4; 9 |] ~ncomp:3 in
  Alcotest.(check (list (pair int int)))
    "merged runs"
    [ (9, 9); (27, 3) ]
    runs;
  let runs1 = Fvm.Decomp2d.cell_runs ~cells:[| 2 |] ~ncomp:4 in
  Alcotest.(check (list (pair int int))) "single cell" [ (8, 4) ] runs1;
  Alcotest.(check (list (pair int int)))
    "empty set" []
    (Fvm.Decomp2d.cell_runs ~cells:[||] ~ncomp:4)

let suite =
  ( "partition",
    [
      Alcotest.test_case "blocks even" `Quick test_blocks_even;
      Alcotest.test_case "blocks uneven" `Quick test_blocks_uneven;
      Alcotest.test_case "block ranges" `Quick test_block_range_consistency;
      Alcotest.test_case "blocks errors" `Quick test_blocks_errors;
      Alcotest.test_case "rcb balance" `Quick test_rcb_balance;
      Alcotest.test_case "rcb locality" `Quick test_rcb_locality;
      Alcotest.test_case "edge cut" `Quick test_edge_cut;
      Alcotest.test_case "rank adjacency" `Quick test_rank_adjacency;
      Alcotest.test_case "halo symmetry" `Quick test_halo_symmetry;
      Alcotest.test_case "halo bytes" `Quick test_halo_bytes;
      Alcotest.test_case "halo rank views" `Quick test_halo_rank_views;
      Alcotest.test_case "split cells" `Quick test_split_cells;
      Alcotest.test_case "halo async exchange" `Quick test_halo_async_exchange;
      Alcotest.test_case "decomp2d build" `Quick test_decomp2d_build;
      Alcotest.test_case "decomp2d d2d edges" `Quick test_decomp2d_d2d_edges;
      Alcotest.test_case "decomp2d cell runs" `Quick test_decomp2d_cell_runs;
      QCheck_alcotest.to_alcotest prop_rcb_covers;
      QCheck_alcotest.to_alcotest prop_halo_exchange_delivers;
    ] )
