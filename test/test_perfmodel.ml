(* Performance-model tests: the paper's headline numbers and the
   qualitative shapes of every evaluation figure must hold under the
   default calibration. *)

let check_bool = Alcotest.(check bool)

open Bte.Perfmodel

let test_sequential_anchor () =
  (* Fig. 9: the DSL CPU code takes ~2.4e3 s for 100 steps sequentially,
     about twice the Fortran code *)
  let dsl = run_time Serial in
  let fortran = run_time (Fortran 1) in
  check_bool "DSL sequential 2000-3000 s" true (dsl > 2000. && dsl < 3000.);
  check_bool "Fortran about 2x faster" true
    (dsl /. fortran > 1.7 && dsl /. fortran < 2.3)

let test_headline_18x () =
  (* "performance improvements of around 18X compared to a CPU-only
     version produced by this same DSL" *)
  let s = gpu_speedup ~p:1 () in
  check_bool (Printf.sprintf "headline speedup %.1f in [15,22]" s) true
    (s > 15. && s < 22.)

let test_profile_table () =
  (* Section III-D: SM 86%, memory throughput 11%, FLOP 49% of peak *)
  let sm, mem, flop = gpu_profile () in
  check_bool "SM util ~86%" true (Float.abs (sm -. 0.86) < 0.02);
  check_bool "memory ~11%" true (Float.abs (mem -. 0.11) < 0.03);
  check_bool "FLOP ~49%" true (Float.abs (flop -. 0.49) < 0.02)

let strictly_improving strategy ps =
  let rec go = function
    | a :: (b :: _ as rest) ->
      run_time (strategy a) > run_time (strategy b) && go rest
    | _ -> true
  in
  go ps

let test_fig4_scaling_shapes () =
  (* band-parallel improves to its 55-rank cap; cell-parallel keeps
     improving to 320 *)
  check_bool "bands improve to 55" true
    (strictly_improving (fun p -> Bands p) [ 1; 2; 5; 10; 20; 40; 55 ]);
  check_bool "cells improve to 320" true
    (strictly_improving (fun p -> Cells p) [ 1; 2; 5; 10; 20; 40; 80; 160; 320 ]);
  (* the band cap is enforced *)
  (match run_time (Bands 56) with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "bands beyond 55 must be rejected")

let test_fig4_efficiency () =
  (* both strategies hold decent parallel efficiency in the paper's range *)
  let eff strategy p = run_time (strategy 1) /. (float_of_int p *. run_time (strategy p)) in
  check_bool "bands eff at 10 > 0.7" true (eff (fun p -> Bands p) 10 > 0.7);
  check_bool "cells eff at 40 > 0.6" true (eff (fun p -> Cells p) 40 > 0.6);
  (* cells lose efficiency by 320 but still beat 50x speedup *)
  let sp320 = run_time (Cells 1) /. run_time (Cells 320) in
  check_bool "cells speedup at 320 in [50, 320]" true (sp320 > 50. && sp320 < 320.)

let test_fig5_breakdown_shape () =
  (* intensity dominates (~97%) sequentially and falls to ~73% at 55 *)
  let pct p =
    (Prt.Breakdown.percentages (run_breakdown (Bands p))).Prt.Breakdown.pct_intensity
  in
  check_bool "p=1 intensity ~96-98%" true (pct 1 > 94. && pct 1 < 99.);
  let p55 = pct 55 in
  check_bool (Printf.sprintf "p=55 intensity %.0f%% ~ 73%%" p55) true
    (p55 > 65. && p55 < 82.);
  (* communication share grows with p *)
  let comm p =
    (Prt.Breakdown.percentages (run_breakdown (Bands p))).Prt.Breakdown.pct_communication
  in
  check_bool "comm grows" true (comm 55 > comm 10 && comm 10 > comm 1)

let test_fig7_gpu_scaling () =
  (* good scaling to 10 devices, weak beyond *)
  check_bool "gpu improves to 10" true
    (strictly_improving (fun p -> Gpu p) [ 1; 2; 4; 8; 10 ]);
  let sp10 = run_time (Gpu 1) /. run_time (Gpu 10) in
  check_bool "near-ideal at 10" true (sp10 > 6. && sp10 <= 11.);
  (* flattening: 10 -> 55 gains much less than ideal (5.5x) *)
  let sp_tail = run_time (Gpu 10) /. run_time (Gpu 55) in
  check_bool "saturating beyond 10" true (sp_tail < 3.5)

let test_fig8_gpu_breakdown () =
  (* GPU runs spend a substantially larger share on the temperature update,
     and communication is minor *)
  List.iter
    (fun g ->
      let pcts = Prt.Breakdown.percentages (run_breakdown (Gpu g)) in
      check_bool "temperature dominates" true (pcts.Prt.Breakdown.pct_temperature > 50.);
      check_bool "communication minor" true (pcts.Prt.Breakdown.pct_communication < 15.))
    [ 1; 2; 4; 8 ]

let test_fig9_crossplots () =
  (* Fortran scales worse: Finch band-parallel overtakes it at high rank
     counts *)
  check_bool "Fortran faster sequentially" true
    (run_time (Fortran 1) < run_time (Bands 1));
  check_bool "Finch bands faster at 55" true
    (run_time (Bands 55) < run_time (Fortran 55));
  (* "The best possible times were roughly equal between the 10 GPU run and
     320 CPU run" *)
  let ratio = run_time (Gpu 10) /. run_time (Cells 320) in
  check_bool (Printf.sprintf "gpu10 ~ cells320 (ratio %.2f)" ratio) true
    (ratio > 0.4 && ratio < 2.5);
  (* "the best performance using 20 cores on a single CPU was slightly
     slower than the same CPU using one core and one GPU" *)
  check_bool "cpu20 slower than 1 gpu" true
    (run_time (Cells 20) > run_time (Gpu 1))

let test_calibration_sensitivity () =
  (* doubling the network latency/byte-time can only slow communication *)
  let slow_net =
    { default with network = { Prt.Cluster.alpha = 4e-6; beta = 2. /. 0.5e9 } }
  in
  let base = run_breakdown (Bands 40) in
  let slow = run_breakdown ~calib:slow_net (Bands 40) in
  check_bool "comm grows with slower net" true
    (slow.Prt.Breakdown.communication >= base.Prt.Breakdown.communication);
  (* a faster GPU (A100) cannot make the hybrid slower *)
  let a100 = { default with gpu = Gpu_sim.Spec.a100 } in
  check_bool "A100 at least as fast" true
    (run_time ~calib:a100 (Gpu 1) <= run_time (Gpu 1) *. 1.01)

let test_gpu_grid_model () =
  (* the 2-D grid with one device per rank is exactly the 1-D GPU model *)
  List.iter
    (fun p ->
      Tutil.check_close
        (Printf.sprintf "grid 1x%d == gpu %d" p p)
        (run_time (Gpu p))
        (run_time (Gpu_grid (1, p))))
    [ 1; 2; 10 ];
  (* spreading one rank's cells over devices beats the single device *)
  check_bool "4 devices faster than 1" true
    (run_time (Gpu_grid (4, 1)) < run_time (Gpu 1));
  check_bool "8 devices faster than 4" true
    (run_time (Gpu_grid (8, 1)) < run_time (Gpu_grid (4, 1)));
  (* the d2d frontier charge is real and specific to multi-device runs:
     a slower NVLink hurts the grid but cannot touch the single device *)
  let slow_nv =
    { default with nvlink = { Prt.Cluster.alpha = 1e-3; beta = 1e-7 } }
  in
  let comm ?calib s =
    (run_breakdown ?calib s).Prt.Breakdown.communication
  in
  check_bool "slow nvlink charges the grid" true
    (comm ~calib:slow_nv (Gpu_grid (4, 1)) > comm (Gpu_grid (4, 1)));
  Tutil.check_close "single device has no d2d term"
    (comm (Gpu 1))
    (comm ~calib:slow_nv (Gpu 1));
  (* caps: devices beyond the cells, ranks beyond the bands *)
  (match run_time (Gpu_grid (20_000, 1)) with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "devices beyond ncells must be rejected");
  match run_time (Gpu_grid (2, 56)) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "ranks beyond nbands must be rejected"

let test_shape_of_scenario () =
  let s = shape_of_scenario Bte.Setup.paper_hotspot in
  Alcotest.(check int) "cells" 14400 s.ncells;
  Alcotest.(check int) "bands" 55 s.nbands;
  Alcotest.(check int) "dirs" 20 s.ndirs;
  Alcotest.(check int) "dofs" 15_840_000 (ndofs s)

let suite =
  ( "perfmodel",
    [
      Alcotest.test_case "sequential anchor (Fig 9)" `Quick test_sequential_anchor;
      Alcotest.test_case "headline ~18x" `Quick test_headline_18x;
      Alcotest.test_case "profiling table (Sec III-D)" `Quick test_profile_table;
      Alcotest.test_case "Fig 4 scaling shapes" `Quick test_fig4_scaling_shapes;
      Alcotest.test_case "Fig 4 efficiency" `Quick test_fig4_efficiency;
      Alcotest.test_case "Fig 5 breakdown shape" `Quick test_fig5_breakdown_shape;
      Alcotest.test_case "Fig 7 GPU scaling" `Quick test_fig7_gpu_scaling;
      Alcotest.test_case "Fig 8 GPU breakdown" `Quick test_fig8_gpu_breakdown;
      Alcotest.test_case "Fig 9 cross-comparisons" `Quick test_fig9_crossplots;
      Alcotest.test_case "calibration sensitivity" `Quick test_calibration_sensitivity;
      Alcotest.test_case "multi-device grid model" `Quick test_gpu_grid_model;
      Alcotest.test_case "scenario shape" `Quick test_shape_of_scenario;
    ] )
