(* Autotuner tests: the backend-spec grammar round-trip (property, the
   full target grammar including GxR grids and 1xR canonicalization),
   plan JSON/apply semantics, tuner determinism on a fixed profile,
   safety of every emitted plan through the analysis gate, the
   two-level decision cache (memory hit, disk hit, tune.cache_hits),
   and the compile-cost separation the bench hygiene relies on. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let () = Bte.Setup.register_scenarios ()

let with_metrics f =
  let was = Prt.Metrics.enabled () in
  Prt.Metrics.enable ();
  Fun.protect ~finally:(fun () -> if not was then Prt.Metrics.disable ()) f

let cval name = Prt.Metrics.value (Prt.Metrics.counter name)

let tiny ?(scenario = "hotspot") ?(nx = 8) ?(nsteps = 4)
    ?(backend = Finch.Config.Auto) () =
  { (Finch.Solve_request.make scenario) with
    Finch.Solve_request.nx;
    ny = 8;
    ndirs = 4;
    nbands = 3;
    nsteps;
    backend }

(* a fixed profile so decisions don't depend on the host running the
   suite *)
let profile =
  { Finch_tune.Tune.cores = 4; gpu = "a6000"; native_ok = false }

let fresh_cache_dir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  d

(* ---------- backend spec grammar (property) ---------- *)

let arb_target =
  let open QCheck.Gen in
  let gen =
    let small = 1 -- 9 in
    oneof
      [ return Finch.Config.Auto;
        return (Finch.Config.Cpu Finch.Config.Serial);
        map (fun n -> Finch.Config.Cpu (Finch.Config.Threaded n)) small;
        map (fun n -> Finch.Config.Cpu (Finch.Config.Band_parallel n)) small;
        map (fun n -> Finch.Config.Cpu (Finch.Config.Cell_parallel n)) small;
        map2
          (fun r d -> Finch.Config.Cpu (Finch.Config.Hybrid (r, d)))
          small small;
        (let* spec = oneofl [ Gpu_sim.Spec.a6000; Gpu_sim.Spec.a100 ] in
         let* devices = small and* ranks = small in
         return (Finch.Config.Gpu { spec; devices; ranks })) ]
  in
  QCheck.make ~print:Finch.Config.target_name gen

let prop_target_round_trip =
  QCheck.Test.make ~name:"target_name / target_of_string round-trip"
    ~count:500 arb_target (fun t ->
      match Finch.Config.target_of_string (Finch.Config.target_name t) with
      | Ok t' -> t' = t
      | Error m -> QCheck.Test.fail_reportf "%s" m)

(* printing never loses information: two distinct targets never share a
   spec string (the name doubles as a cache/report key) *)
let prop_target_name_injective =
  QCheck.Test.make ~name:"distinct targets print distinct specs" ~count:500
    (QCheck.pair arb_target arb_target) (fun (a, b) ->
      a = b
      || not
           (String.equal (Finch.Config.target_name a)
              (Finch.Config.target_name b)))

let test_target_spellings () =
  let parse s =
    match Finch.Config.target_of_string s with
    | Ok t -> t
    | Error m -> Alcotest.failf "%s should parse: %s" s m
  in
  (* 1xR grids canonicalize onto the rank spelling *)
  check_string "1x4 prints as ranks" "gpu:a6000:4"
    (Finch.Config.target_name (parse "gpu:a6000:1x4"));
  check_string "2x3 grid kept" "gpu:a6000:2x3"
    (Finch.Config.target_name (parse "gpu:a6000:2x3"));
  check_string "1x1 is the bare device" "gpu:a6000"
    (Finch.Config.target_name (parse "gpu:a6000:1x1"));
  check_string "auto round-trips" "auto"
    (Finch.Config.target_name (parse "AUTO"));
  List.iter
    (fun s ->
      match Finch.Config.target_of_string s with
      | Ok _ -> Alcotest.failf "%s should not parse" s
      | Error _ -> ())
    [ "gpu:a6000:0x4"; "gpu:a6000:2x"; "gpu:nope"; "cells:0"; "autos";
      "hybrid:2"; "threads:-1"; "" ]

(* ---------- plans ---------- *)

let test_plan_basics () =
  let pl =
    Finch_tune.Plan.make ~opt_level:Finch.Config.O1 ~overlap:true
      (Finch.Config.Cpu (Finch.Config.Cell_parallel 2))
  in
  (match Finch_tune.Plan.of_json (Finch_tune.Plan.to_json pl) with
   | Ok pl' -> check_bool "json round-trip" true (Finch_tune.Plan.equal pl pl')
   | Error m -> Alcotest.fail m);
  (match Finch_tune.Plan.make Finch.Config.Auto with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "Plan.make must reject Auto");
  (* apply overrides the execution knobs and nothing else *)
  let req = { (tiny ()) with Finch.Solve_request.label = Some "keep" } in
  let req' = Finch_tune.Plan.apply pl req in
  check_string "backend applied" "cells:2"
    (Finch.Config.target_name req'.Finch.Solve_request.backend);
  check_bool "overlap applied" true req'.Finch.Solve_request.overlap;
  check_bool "label kept" true
    (req'.Finch.Solve_request.label = Some "keep");
  check_int "nsteps kept" req.Finch.Solve_request.nsteps
    req'.Finch.Solve_request.nsteps;
  (* only single-device GPU plans ask for a co-batching window *)
  check_int "gpu chunk"
    Finch_tune.Plan.default_gpu_chunk
    (Finch_tune.Plan.chunk_of_target
       (Finch.Config.Gpu { spec = Gpu_sim.Spec.a6000; devices = 1; ranks = 1 }));
  check_int "multi-device chunk" 1
    (Finch_tune.Plan.chunk_of_target
       (Finch.Config.Gpu { spec = Gpu_sim.Spec.a6000; devices = 2; ranks = 2 }));
  check_int "cpu chunk" 1
    (Finch_tune.Plan.chunk_of_target (Finch.Config.Cpu Finch.Config.Serial))

(* ---------- determinism ---------- *)

let test_deterministic () =
  Finch_tune.Tune.set_cache_dir (fresh_cache_dir "finch_tune_det");
  let req = tiny () in
  let plan () =
    (* force:true skips cache reads, so both calls really search *)
    match Finch_tune.Tune.plan ~profile ~force:true req with
    | Ok d -> d
    | Error m -> Alcotest.fail m
  in
  let a = plan () and b = plan () in
  check_bool "same plan both runs" true
    (Finch_tune.Plan.equal a.Finch_tune.Tune.dc_plan
       b.Finch_tune.Tune.dc_plan);
  check_bool "same ranking both runs" true
    (List.for_all2
       (fun (x : Finch_tune.Tune.candidate) (y : Finch_tune.Tune.candidate) ->
         Finch_tune.Plan.equal x.Finch_tune.Tune.cd_plan
           y.Finch_tune.Tune.cd_plan)
       a.Finch_tune.Tune.dc_candidates b.Finch_tune.Tune.dc_candidates);
  (* the profile is part of the decision: a GPU-less single-core host
     cannot pick a pool or hybrid plan it has no cores for *)
  let one_core = { profile with Finch_tune.Tune.cores = 1 } in
  List.iter
    (fun (pl : Finch_tune.Plan.t) ->
      match pl.Finch_tune.Plan.target with
      | Finch.Config.Cpu (Finch.Config.Threaded _ | Finch.Config.Hybrid _) ->
        Alcotest.failf "1-core profile offered %s" (Finch_tune.Plan.name pl)
      | _ -> ())
    (Finch_tune.Tune.candidates ~profile:one_core req)

(* ---------- safety: emitted plans pass the analysis gate ---------- *)

let test_safe_plans () =
  Finch_tune.Tune.set_cache_dir (fresh_cache_dir "finch_tune_safe");
  List.iter
    (fun (scenario, nx) ->
      let req = tiny ~scenario ~nx () in
      match Finch_tune.Tune.plan ~profile ~force:true req with
      | Error m -> Alcotest.fail m
      | Ok d ->
        let solved = Finch_tune.Plan.apply d.Finch_tune.Tune.dc_plan req in
        check_bool "resolved backend is concrete" true
          (solved.Finch.Solve_request.backend <> Finch.Config.Auto);
        (match Finch.prepare solved with
         | Error e -> Alcotest.fail (Finch.Solve_error.to_string e)
         | Ok prep ->
           let rep =
             Finch_analysis.Driver.check_problem prep.Finch.pr_problem
           in
           check_int
             (Printf.sprintf "%s: chosen plan analyzes clean" scenario)
             0 rep.Finch_analysis.Driver.errors))
    [ "hotspot", 8; "corner", 6 ]

let test_resolve_passthrough () =
  let concrete = tiny ~backend:(Finch.Config.Cpu Finch.Config.Serial) () in
  (match Finch_tune.Tune.resolve ~profile concrete with
   | Ok (req, None) -> check_bool "untouched" true (req == concrete)
   | Ok (_, Some _) -> Alcotest.fail "concrete request must not be planned"
   | Error m -> Alcotest.fail m);
  (* prepare refuses an unresolved auto backend outright *)
  match Finch.prepare (tiny ()) with
  | Error (Finch.Solve_error.Invalid_request _) -> ()
  | Error e -> Alcotest.fail (Finch.Solve_error.to_string e)
  | Ok _ -> Alcotest.fail "prepare must reject backend=auto"

(* ---------- decision cache ---------- *)

let test_cache_hits () =
  with_metrics (fun () ->
      Finch_tune.Tune.set_cache_dir (fresh_cache_dir "finch_tune_cache");
      Finch_tune.Tune.clear_memo ();
      let req = tiny () in
      let h0 = cval "tune.cache_hits" and m0 = cval "tune.cache_misses" in
      let d1 =
        match Finch_tune.Tune.plan ~profile req with
        | Ok d -> d
        | Error m -> Alcotest.fail m
      in
      check_bool "cold: computed" true
        (d1.Finch_tune.Tune.dc_origin = Finch_tune.Tune.Computed);
      check_int "cold: one miss" (m0 + 1) (cval "tune.cache_misses");
      let d2 =
        match Finch_tune.Tune.plan ~profile req with
        | Ok d -> d
        | Error m -> Alcotest.fail m
      in
      check_bool "warm: memo hit" true
        (d2.Finch_tune.Tune.dc_origin = Finch_tune.Tune.Memory_hit);
      check_int "warm: one hit" (h0 + 1) (cval "tune.cache_hits");
      (* drop the in-process memo: the disk level must still answer *)
      Finch_tune.Tune.clear_memo ();
      let d3 =
        match Finch_tune.Tune.plan ~profile req with
        | Ok d -> d
        | Error m -> Alcotest.fail m
      in
      check_bool "disk hit after memo clear" true
        (d3.Finch_tune.Tune.dc_origin = Finch_tune.Tune.Disk_hit);
      check_bool "all levels agree" true
        (Finch_tune.Plan.equal d1.Finch_tune.Tune.dc_plan
           d3.Finch_tune.Tune.dc_plan);
      check_string "same cache key" d1.Finch_tune.Tune.dc_key
        d3.Finch_tune.Tune.dc_key;
      (* a different shape is a different decision *)
      match Finch_tune.Tune.plan ~profile (tiny ~nx:6 ()) with
      | Ok d4 ->
        check_bool "shape changes the key" true
          (d4.Finch_tune.Tune.dc_key <> d1.Finch_tune.Tune.dc_key)
      | Error m -> Alcotest.fail m)

(* the machine profile is part of the key: a decision tuned on one host
   never leaks onto a differently-shaped one *)
let test_cache_key_profile () =
  let req = tiny () in
  let key p =
    match Finch_tune.Tune.cache_key ~profile:p req with
    | Ok k -> k
    | Error m -> Alcotest.fail m
  in
  check_bool "profile in key" true
    (key profile <> key { profile with Finch_tune.Tune.cores = 8 });
  check_string "key is stable" (key profile) (key profile)

(* ---------- bench hygiene: compile cost is one-off and visible ------- *)

let test_compile_separation () =
  if not (Finch_tune.Tune.detect_profile ()).Finch_tune.Tune.native_ok then
    ()  (* no toolchain: nothing to separate *)
  else
    with_metrics (fun () ->
        Finch_codegen.Codegen.set_cache_dir
          (fresh_cache_dir "finch_tune_codegen");
        (* earlier suites may have compiled this program: drop the
           in-process memo so the first solve is genuinely cold *)
        Finch_codegen.Codegen.clear_memo ();
        Finch_codegen.Codegen.install ~post_io:Bte.Setup.post_io ();
        let req =
          { (tiny ~backend:(Finch.Config.Cpu Finch.Config.Serial) ()) with
            Finch.Solve_request.eval_mode = Finch.Config.Native }
        in
        let solve () =
          let k0 = cval "codegen.compile_ns" in
          match Finch.solve req with
          | Ok _ -> cval "codegen.compile_ns" - k0
          | Error e -> Alcotest.fail (Finch.Solve_error.to_string e)
        in
        (* cold: the native build runs and is accounted; warm: the cached
           kernel binds with zero compile time — the invariant that lets
           the bench keep compile_ns out of its best-of wall times *)
        let cold = solve () in
        let warm = solve () in
        check_bool "cold solve compiles" true (cold > 0);
        check_int "warm solve does not" 0 warm)

let suite =
  ( "tune",
    [
      QCheck_alcotest.to_alcotest prop_target_round_trip;
      QCheck_alcotest.to_alcotest prop_target_name_injective;
      Alcotest.test_case "target spec spellings" `Quick test_target_spellings;
      Alcotest.test_case "plan basics" `Quick test_plan_basics;
      Alcotest.test_case "deterministic planning" `Quick test_deterministic;
      Alcotest.test_case "emitted plans analyze clean" `Quick test_safe_plans;
      Alcotest.test_case "resolve passthrough" `Quick test_resolve_passthrough;
      Alcotest.test_case "decision cache levels" `Quick test_cache_hits;
      Alcotest.test_case "profile keys the cache" `Quick test_cache_key_profile;
      Alcotest.test_case "compile cost separated" `Quick test_compile_separation;
    ] )
