(* Persistent domain-pool tests: region execution, reuse across many
   regions (the whole point vs. spawn/join per step), barriers, block
   partitioning and failure propagation. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_run_covers_ranks () =
  Prt.Pool.with_pool ~size:4 (fun pool ->
      check_int "size" 4 (Prt.Pool.size pool);
      let hits = Array.make 4 0 in
      Prt.Pool.run pool (fun rank -> hits.(rank) <- hits.(rank) + 1);
      Array.iteri (fun r n -> check_int (Printf.sprintf "rank %d once" r) 1 n) hits)

let test_reuse_many_regions () =
  (* the same domains service every region: per-rank counters accumulate *)
  let regions = 200 in
  Prt.Pool.with_pool ~size:3 (fun pool ->
      let counts = Array.make 3 0 in
      for _ = 1 to regions do
        Prt.Pool.run pool (fun rank -> counts.(rank) <- counts.(rank) + 1)
      done;
      Array.iter (fun n -> check_int "every region ran on every rank" regions n) counts)

let test_single_rank_pool () =
  (* size 1 spawns no domains; the caller does all the work *)
  Prt.Pool.with_pool ~size:1 (fun pool ->
      let hit = ref 0 in
      Prt.Pool.run pool (fun rank ->
          check_int "only rank 0" 0 rank;
          incr hit);
      check_int "ran once" 1 !hit)

let test_barrier_ordering () =
  (* all pre-barrier events precede all post-barrier events *)
  let log = ref [] in
  let m = Mutex.create () in
  let push e = Mutex.lock m; log := e :: !log; Mutex.unlock m in
  Prt.Pool.with_pool ~size:4 (fun pool ->
      Prt.Pool.run pool (fun rank ->
          push (`Before, rank);
          Prt.Pool.barrier pool;
          push (`After, rank)));
  let events = List.rev !log in
  let rec split acc = function
    | (`Before, _) :: rest -> split (acc + 1) rest
    | rest -> acc, rest
  in
  let nbefore, rest = split 0 events in
  check_int "all befores first" 4 nbefore;
  check_int "then all afters" 4 (List.length rest);
  check_bool "rest are afters" true
    (List.for_all (function `After, _ -> true | _ -> false) rest)

let test_repeated_barriers () =
  (* sense reversal: many consecutive barriers in one region stay in step *)
  Prt.Pool.with_pool ~size:3 (fun pool ->
      let stage = Array.make 3 0 in
      Prt.Pool.run pool (fun rank ->
          for s = 1 to 50 do
            stage.(rank) <- s;
            Prt.Pool.barrier pool;
            (* after the barrier every rank has reached stage s *)
            Array.iter
              (fun v -> if v < s then failwith "barrier did not hold")
              stage;
            Prt.Pool.barrier pool
          done);
      Array.iter (fun v -> check_int "all finished" 50 v) stage)

let test_block_matches_partition () =
  Prt.Pool.with_pool ~size:3 (fun pool ->
      List.iter
        (fun n ->
          for rank = 0 to 2 do
            let off, len = Prt.Pool.block pool rank ~n in
            let off', len' = Fvm.Partition.block_range ~nitems:n ~nparts:3 rank in
            check_int (Printf.sprintf "off n=%d r=%d" n rank) off' off;
            check_int (Printf.sprintf "len n=%d r=%d" n rank) len' len
          done)
        [ 0; 1; 2; 3; 7; 100 ])

let test_parallel_for_sums () =
  let n = 10_007 in
  let data = Array.init n (fun i -> float_of_int i) in
  let partial = Array.make 4 0. in
  Prt.Pool.with_pool ~size:4 (fun pool ->
      Prt.Pool.run pool (fun rank ->
          let off, len = Prt.Pool.block pool rank ~n in
          let s = ref 0. in
          for i = off to off + len - 1 do
            s := !s +. data.(i)
          done;
          partial.(rank) <- !s));
  let total = Array.fold_left ( +. ) 0. partial in
  let expected = float_of_int n *. float_of_int (n - 1) /. 2. in
  Tutil.check_close "block-partitioned sum" expected total;
  (* and via the parallel_for convenience wrapper *)
  let touched = Array.make n false in
  Prt.Pool.with_pool ~size:5 (fun pool ->
      Prt.Pool.parallel_for pool ~n (fun ~lo ~hi ->
          for i = lo to hi do
            touched.(i) <- true
          done));
  check_bool "every element visited exactly once overall" true
    (Array.for_all (fun b -> b) touched)

let test_exception_propagates () =
  Prt.Pool.with_pool ~size:3 (fun pool ->
      (match Prt.Pool.run pool (fun rank -> if rank = 2 then failwith "boom") with
       | exception Failure m -> Alcotest.(check string) "worker exn" "boom" m
       | () -> Alcotest.fail "expected Failure from worker rank");
      (* the pool survives a failed region and runs the next one *)
      let ok = Array.make 3 false in
      Prt.Pool.run pool (fun rank -> ok.(rank) <- true);
      check_bool "pool usable after failure" true (Array.for_all (fun b -> b) ok))

let test_with_pool_cleans_up_on_raise () =
  match
    Prt.Pool.with_pool ~size:2 (fun pool ->
        Prt.Pool.run pool (fun _ -> ());
        raise Exit)
  with
  | exception Exit -> () (* shutdown ran via with_pool's protection *)
  | () -> Alcotest.fail "expected Exit"

let test_create_validates_size () =
  match Prt.Pool.create ~size:0 with
  | exception Prt.Pool.Pool_error _ -> ()
  | pool -> Prt.Pool.shutdown pool; Alcotest.fail "size 0 must be rejected"

let test_shutdown_idempotent () =
  let pool = Prt.Pool.create ~size:3 in
  Prt.Pool.run pool (fun _ -> ());
  Prt.Pool.shutdown pool;
  Prt.Pool.shutdown pool

let suite =
  ( "pool",
    [
      Alcotest.test_case "run covers all ranks" `Quick test_run_covers_ranks;
      Alcotest.test_case "reuse across 200 regions" `Quick test_reuse_many_regions;
      Alcotest.test_case "single-rank pool" `Quick test_single_rank_pool;
      Alcotest.test_case "barrier ordering" `Quick test_barrier_ordering;
      Alcotest.test_case "repeated barriers (sense reversal)" `Quick
        test_repeated_barriers;
      Alcotest.test_case "block matches Partition.block_range" `Quick
        test_block_matches_partition;
      Alcotest.test_case "parallel_for coverage and sums" `Quick
        test_parallel_for_sums;
      Alcotest.test_case "worker exception propagates" `Quick
        test_exception_propagates;
      Alcotest.test_case "with_pool cleans up on raise" `Quick
        test_with_pool_cleans_up_on_raise;
      Alcotest.test_case "create validates size" `Quick test_create_validates_size;
      Alcotest.test_case "shutdown idempotent" `Quick test_shutdown_idempotent;
    ] )
