(* Entry point assembling every suite; run with `dune runtest`. *)

let () =
  Alcotest.run "finch-bte"
    [
      Test_expr.suite;
      Test_parser.suite;
      Test_diff.suite;
      Test_mesh.suite;
      Test_gmsh.suite;
      Test_partition.suite;
      Test_field.suite;
      Test_gpu.suite;
      Test_prt.suite;
      Test_trace.suite;
      Test_pool.suite;
      Test_pipeline.suite;
      Test_problem.suite;
      Test_eval.suite;
      Test_ir.suite;
      Test_analysis.suite;
      Test_solver.suite;
      Test_bte_physics.suite;
      Test_bte_solver.suite;
      Test_opt.suite;
      Test_perfmodel.suite;
      Test_fem.suite;
      Test_codegen.suite;
      Test_serve.suite;
      Test_tune.suite;
    ]
