(* Error-path and validation tests for the script-level problem builder. *)

let check_bool = Alcotest.(check bool)

let expect_problem_error f =
  match f () with
  | exception Finch.Problem.Problem_error _ -> ()
  | _ -> Alcotest.fail "expected Problem_error"

let fresh () =
  let p = Finch.Problem.init "t" in
  Finch.Problem.domain p 2;
  Finch.Problem.set_mesh p (Fvm.Mesh_gen.rectangle ~nx:2 ~ny:2 ~lx:1. ~ly:1. ());
  p

let test_domain_validation () =
  let p = fresh () in
  expect_problem_error (fun () -> Finch.Problem.domain p 0);
  expect_problem_error (fun () -> Finch.Problem.domain p 4)

let test_steps_validation () =
  let p = fresh () in
  expect_problem_error (fun () -> Finch.Problem.set_steps p ~dt:0. ~nsteps:5);
  expect_problem_error (fun () -> Finch.Problem.set_steps p ~dt:1e-3 ~nsteps:0)

let test_mesh_dim_mismatch () =
  let p = Finch.Problem.init "t" in
  Finch.Problem.domain p 3;
  expect_problem_error (fun () ->
      Finch.Problem.set_mesh p (Fvm.Mesh_gen.rectangle ~nx:2 ~ny:2 ~lx:1. ~ly:1. ()))

let test_duplicate_entities () =
  let p = fresh () in
  let _ = Finch.Problem.index p ~name:"d" ~range:(1, 4) in
  expect_problem_error (fun () -> Finch.Problem.index p ~name:"d" ~range:(1, 2));
  let _ = Finch.Problem.variable p ~name:"u" () in
  expect_problem_error (fun () -> Finch.Problem.variable p ~name:"u" ());
  let _ = Finch.Problem.coefficient p ~name:"k" (Finch.Entity.Const 1.) in
  expect_problem_error (fun () ->
      Finch.Problem.coefficient p ~name:"k" (Finch.Entity.Const 2.))

let test_equation_unknown_entity () =
  let p = fresh () in
  let u = Finch.Problem.variable p ~name:"u" () in
  expect_problem_error (fun () ->
      Finch.Problem.conservation_form p u "-mystery*u")

let test_no_equation () =
  let p = fresh () in
  let _ = Finch.Problem.variable p ~name:"u" () in
  expect_problem_error (fun () -> ignore (Finch.Problem.the_equation p))

let test_multiple_equations_rejected () =
  let p = fresh () in
  let u = Finch.Problem.variable p ~name:"u" () in
  let v = Finch.Problem.variable p ~name:"v" () in
  let _ = Finch.Problem.coefficient p ~name:"k" (Finch.Entity.Const 1.) in
  let _ = Finch.Problem.conservation_form p u "-k*u" in
  let _ = Finch.Problem.conservation_form p v "-k*v" in
  expect_problem_error (fun () -> ignore (Finch.Problem.the_equation p))

let test_fe_solver_rejected () =
  let p = fresh () in
  Finch.Problem.solver_type p Finch.Config.FE;
  let u = Finch.Problem.variable p ~name:"u" () in
  let _ = Finch.Problem.coefficient p ~name:"k" (Finch.Entity.Const 1.) in
  expect_problem_error (fun () -> Finch.Problem.conservation_form p u "-k*u")

let test_boundary_unknown_variable () =
  let p = fresh () in
  let ghost = Finch.Entity.variable ~name:"ghostvar" () in
  expect_problem_error (fun () ->
      Finch.Problem.boundary p ghost 1 Finch.Config.Flux "0")

let test_unknown_callback_at_lowering () =
  let p = fresh () in
  Finch.Problem.set_steps p ~dt:1e-3 ~nsteps:1;
  let u = Finch.Problem.variable p ~name:"u" () in
  let _ = Finch.Problem.coefficient p ~name:"k" (Finch.Entity.Const 1.) in
  Finch.Problem.initial p u (Finch.Problem.Init_const 0.);
  (* register the callback so the bc parses as a callback form, then remove
     it to simulate a missing import *)
  Finch.Problem.callback_function p "mybc" (fun _ -> 0.);
  Finch.Problem.boundary p u 1 Finch.Config.Flux "mybc(u, 1)";
  p.Finch.Problem.callbacks <- [];
  let _ = Finch.Problem.conservation_form p u "-k*u" in
  (match Finch.Lower.build p with
   | exception Finch.Lower.Lower_error _ -> ()
   | _ -> Alcotest.fail "expected Lower_error for missing callback")

let test_callback_numeric_args () =
  let p = fresh () in
  Finch.Problem.set_steps p ~dt:1e-4 ~nsteps:3;
  let u = Finch.Problem.variable p ~name:"u" () in
  let _ = Finch.Problem.coefficient p ~name:"k" (Finch.Entity.Const 1.) in
  Finch.Problem.initial p u (Finch.Problem.Init_const 0.);
  let seen = ref [] in
  Finch.Problem.callback_function p "probe" (fun ctx ->
      seen := Array.to_list ctx.Finch.Problem.bc_args :: !seen;
      0.);
  (* entity arguments are skipped, numeric literals collected in order *)
  Finch.Problem.boundary p u 1 Finch.Config.Flux "probe(u, k, 300, 2.5)";
  List.iter
    (fun r -> Finch.Problem.boundary p u r Finch.Config.Flux "0")
    [ 2; 3; 4 ];
  let _ = Finch.Problem.conservation_form p u "-k*u" in
  let _ = Finch.Solve.solve p in
  (match !seen with
   | args :: _ ->
     Alcotest.(check (list (float 0.))) "collected numeric args" [ 300.; 2.5 ] args
   | [] -> Alcotest.fail "callback never invoked")

let test_initial_unknown_variable () =
  let p = fresh () in
  Finch.Problem.set_steps p ~dt:1e-3 ~nsteps:1;
  let u = Finch.Problem.variable p ~name:"u" () in
  let _ = Finch.Problem.coefficient p ~name:"k" (Finch.Entity.Const 1.) in
  let ghost = Finch.Entity.variable ~name:"ghostvar" () in
  Finch.Problem.initial p ghost (Finch.Problem.Init_const 1.);
  let _ = Finch.Problem.conservation_form p u "-k*u" in
  match Finch.Lower.build p with
  | exception Finch.Lower.Lower_error _ -> ()
  | _ -> Alcotest.fail "expected Lower_error for stray initial condition"

let test_entity_validation () =
  (match Finch.Entity.index ~name:"d" ~range:(3, 2) with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "empty index range must be rejected");
  let d = Finch.Entity.index ~name:"d" ~range:(1, 4) in
  (match Finch.Entity.coefficient ~name:"c" ~index:d (Finch.Entity.Arr [| 1.; 2. |]) with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "array/extent mismatch must be rejected");
  let v = Finch.Entity.variable ~name:"v" ~indices:[ d ] () in
  Alcotest.(check int) "ncomp" 4 (Finch.Entity.var_ncomp v);
  Alcotest.(check int) "comp" 2 (Finch.Entity.var_comp v [ 2 ]);
  (match Finch.Entity.var_comp v [ 9 ] with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "out-of-range component must be rejected")

let test_target_names () =
  check_bool "serial name" true
    (Finch.Config.target_name (Finch.Config.Cpu Finch.Config.Serial) = "serial");
  check_bool "bands name" true
    (Finch.Config.target_name (Finch.Config.Cpu (Finch.Config.Band_parallel 4))
     = "bands:4");
  check_bool "hybrid name" true
    (Finch.Config.target_name (Finch.Config.Cpu (Finch.Config.Hybrid (2, 4)))
     = "hybrid:2x4");
  check_bool "gpu name" true
    (Finch.Config.target_name
       (Finch.Config.Gpu { spec = Gpu_sim.Spec.a6000; devices = 1; ranks = 2 })
     = "gpu:a6000:2");
  check_bool "gpu single-rank name" true
    (Finch.Config.target_name
       (Finch.Config.Gpu { spec = Gpu_sim.Spec.a100; devices = 1; ranks = 1 })
     = "gpu:a100")

(* every constructor shape must survive target_name |> target_of_string *)
let test_target_roundtrip () =
  let targets =
    [ Finch.Config.Cpu Finch.Config.Serial;
      Finch.Config.Cpu (Finch.Config.Cell_parallel 3);
      Finch.Config.Cpu (Finch.Config.Band_parallel 8);
      Finch.Config.Cpu (Finch.Config.Threaded 5);
      Finch.Config.Cpu (Finch.Config.Hybrid (2, 4));
      Finch.Config.Gpu { spec = Gpu_sim.Spec.a6000; devices = 1; ranks = 1 };
      Finch.Config.Gpu { spec = Gpu_sim.Spec.a100; devices = 1; ranks = 4 };
      Finch.Config.Gpu { spec = Gpu_sim.Spec.a6000; devices = 4; ranks = 2 };
      Finch.Config.Gpu { spec = Gpu_sim.Spec.a100; devices = 2; ranks = 1 } ]
  in
  List.iter
    (fun t ->
      let name = Finch.Config.target_name t in
      match Finch.Config.target_of_string name with
      | Ok t' -> check_bool ("round-trip " ^ name) true (t = t')
      | Error e -> Alcotest.fail (name ^ " failed to parse back: " ^ e))
    targets;
  (* spellings beyond the canonical ones *)
  check_bool "case-insensitive" true
    (Finch.Config.target_of_string "GPU:A100"
     = Ok (Finch.Config.Gpu { spec = Gpu_sim.Spec.a100; devices = 1; ranks = 1 }));
  check_bool "legacy hybrid:R:D" true
    (Finch.Config.target_of_string "hybrid:2:4"
     = Ok (Finch.Config.Cpu (Finch.Config.Hybrid (2, 4))));
  check_bool "bare gpu" true
    (Finch.Config.target_of_string "gpu"
     = Ok (Finch.Config.Gpu { spec = Gpu_sim.Spec.a6000; devices = 1; ranks = 1 }));
  (* the GxR grid form; 1xR is semantic round-trip: parses, prints gpu:NAME:R *)
  check_bool "gpu grid GxR" true
    (Finch.Config.target_of_string "gpu:a6000:4x2"
     = Ok (Finch.Config.Gpu { spec = Gpu_sim.Spec.a6000; devices = 4; ranks = 2 }));
  check_bool "gpu grid 1xR canonicalizes" true
    (match Finch.Config.target_of_string "gpu:a100:1x4" with
     | Ok t ->
       t = Finch.Config.Gpu { spec = Gpu_sim.Spec.a100; devices = 1; ranks = 4 }
       && Finch.Config.target_name t = "gpu:a100:4"
     | Error _ -> false);
  check_bool "gpu grid GxR name" true
    (Finch.Config.target_name
       (Finch.Config.Gpu { spec = Gpu_sim.Spec.a6000; devices = 2; ranks = 3 })
     = "gpu:a6000:2x3");
  (* malformed specs are Errors, not exceptions *)
  List.iter
    (fun s ->
      match Finch.Config.target_of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("expected parse error for " ^ s))
    [ ""; "cells"; "cells:0"; "cells:x"; "hybrid:2"; "hybrid:2x0";
      "gpu:v100"; "gpu:a100:0"; "mpi:4"; "gpu:a6000:0x2"; "gpu:a6000:2x0";
      "gpu:a6000:2x"; "gpu:a6000:x2"; "gpu:a6000:2x2x2" ]

let suite =
  ( "problem",
    [
      Alcotest.test_case "domain validation" `Quick test_domain_validation;
      Alcotest.test_case "steps validation" `Quick test_steps_validation;
      Alcotest.test_case "mesh dim mismatch" `Quick test_mesh_dim_mismatch;
      Alcotest.test_case "duplicate entities" `Quick test_duplicate_entities;
      Alcotest.test_case "equation unknown entity" `Quick test_equation_unknown_entity;
      Alcotest.test_case "no equation" `Quick test_no_equation;
      Alcotest.test_case "multiple equations rejected" `Quick
        test_multiple_equations_rejected;
      Alcotest.test_case "FE solver rejected for conservationForm" `Quick
        test_fe_solver_rejected;
      Alcotest.test_case "boundary unknown variable" `Quick
        test_boundary_unknown_variable;
      Alcotest.test_case "unknown callback at lowering" `Quick
        test_unknown_callback_at_lowering;
      Alcotest.test_case "callback numeric args" `Quick test_callback_numeric_args;
      Alcotest.test_case "stray initial condition" `Quick test_initial_unknown_variable;
      Alcotest.test_case "entity validation" `Quick test_entity_validation;
      Alcotest.test_case "target names" `Quick test_target_names;
      Alcotest.test_case "backend spec round-trip" `Quick test_target_roundtrip;
    ] )
