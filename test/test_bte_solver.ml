(* End-to-end BTE tests: the DSL-generated solver against the hand-written
   reference solver (the paper's "solutions matched" verification), target
   equivalence, physical plausibility and conservation. *)

let check_bool = Alcotest.(check bool)

(* a tiny scenario that runs in well under a second *)
let tiny =
  {
    Bte.Setup.small_hotspot with
    Bte.Setup.nx = 10;
    ny = 10;
    lx = 2e-6;
    ly = 2e-6;
    ndirs = 4;
    n_la_bands = 4;
    hot_radius = 0.6e-6;
    hot_center = 1e-6;
    nsteps = 12;
  }

let solve_with target =
  let built = Bte.Setup.build tiny in
  Finch.Problem.set_target built.Bte.Setup.problem target;
  let o = Finch.Solve.solve ~band_index:"b" built.Bte.Setup.problem in
  built, o

let test_dsl_matches_reference () =
  (* identical discretization, identical trajectories *)
  let built, o = solve_with (Finch.Config.Cpu Finch.Config.Serial) in
  let r = Bte.Reference.create built.Bte.Setup.scenario in
  Bte.Reference.run r ~nsteps:tiny.Bte.Setup.nsteps;
  let fi = Finch.Solve.field o "I" in
  let ft = Finch.Solve.field o "T" in
  let max_i = ref 0. and max_t = ref 0. in
  for cell = 0 to Fvm.Field.ncells fi - 1 do
    for comp = 0 to Fvm.Field.ncomp fi - 1 do
      let a = Fvm.Field.get fi cell comp in
      let b = Bte.Reference.intensity r ~cell ~comp in
      max_i := Float.max !max_i (Float.abs (a -. b) /. (1e-30 +. Float.abs b))
    done;
    max_t :=
      Float.max !max_t
        (Float.abs (Fvm.Field.get ft cell 0 -. Bte.Reference.temperature r ~cell))
  done;
  if !max_i > 1e-10 then Alcotest.failf "intensity mismatch: rel %g" !max_i;
  if !max_t > 1e-8 then Alcotest.failf "temperature mismatch: %g K" !max_t

let field_diff o1 o2 name =
  Fvm.Field.max_abs_diff (Finch.Solve.field o1 name) (Finch.Solve.field o2 name)

let test_band_parallel_matches_serial () =
  let _, o1 = solve_with (Finch.Config.Cpu Finch.Config.Serial) in
  List.iter
    (fun n ->
      let _, o2 = solve_with (Finch.Config.Cpu (Finch.Config.Band_parallel n)) in
      let d = field_diff o1 o2 "I" in
      if d > 1e-13 then Alcotest.failf "bands %d: diff %g" n d)
    [ 2; 3; 5 ]

let test_cell_parallel_matches_serial () =
  let _, o1 = solve_with (Finch.Config.Cpu Finch.Config.Serial) in
  List.iter
    (fun n ->
      let _, o2 = solve_with (Finch.Config.Cpu (Finch.Config.Cell_parallel n)) in
      let d = field_diff o1 o2 "I" in
      if d > 1e-13 then Alcotest.failf "cells %d: diff %g" n d)
    [ 2; 4 ]

let test_pool_executors_match_serial () =
  (* the persistent-pool executors on the hotspot problem itself: the
     double-buffered scheme makes agreement exact *)
  let _, o1 = solve_with (Finch.Config.Cpu Finch.Config.Serial) in
  List.iter
    (fun (label, target) ->
      let _, o2 = solve_with target in
      let d = field_diff o1 o2 "I" in
      if d > 0. then Alcotest.failf "%s: diff %g" label d;
      let dt = field_diff o1 o2 "T" in
      if dt > 0. then Alcotest.failf "%s: T diff %g" label dt)
    [ "threads 3", Finch.Config.Cpu (Finch.Config.Threaded 3);
      "hybrid 2x2", Finch.Config.Cpu (Finch.Config.Hybrid (2, 2)) ]

let test_tape_matches_closure_on_hotspot () =
  (* full solve under the tape evaluator is bit-identical to the closure
     evaluator, and the tape measurably skips cached ops *)
  let _, o1 = solve_with (Finch.Config.Cpu Finch.Config.Serial) in
  let built = Bte.Setup.build tiny in
  Finch.Problem.set_eval_mode built.Bte.Setup.problem Finch.Config.Tape;
  let o2 = Finch.Solve.solve ~band_index:"b" built.Bte.Setup.problem in
  let d = field_diff o1 o2 "I" in
  if d > 0. then Alcotest.failf "tape vs closure on hotspot: diff %g" d;
  let st = o2.Finch.Solve.states.(0) in
  check_bool "tapes present in tape mode" true (st.Finch.Lower.tapes <> []);
  List.iter
    (fun (name, t) ->
      let runs = Finch.Eval.tape_runs t in
      let len = Finch.Eval.tape_length t in
      let exec = Finch.Eval.tape_executed t in
      check_bool (Printf.sprintf "tape %s ran" name) true (runs > 0);
      check_bool
        (Printf.sprintf "tape %s executed fewer ops than full re-evaluation"
           name)
        true
        (exec < runs * len))
    st.Finch.Lower.tapes

let test_gpu_matches_serial () =
  let _, o1 = solve_with (Finch.Config.Cpu Finch.Config.Serial) in
  let _, o2 =
    solve_with (Finch.Config.Gpu { spec = Gpu_sim.Spec.a6000; devices = 1; ranks = 1 })
  in
  (* the hybrid schedule adds the boundary contribution in a separate term,
     so agreement is to rounding (relative), not bitwise *)
  let scale = Fvm.Field.max_abs (Finch.Solve.field o1 "I") in
  let d = field_diff o1 o2 "I" /. scale in
  if d > 1e-12 then Alcotest.failf "gpu relative diff %g" d;
  let dt = field_diff o1 o2 "T" in
  if dt > 1e-8 then Alcotest.failf "gpu T diff %g" dt

let test_multi_gpu_matches_serial () =
  (* the paper's multi-GPU configuration: band partitioning with one
     (simulated) device per rank, executed for real under the SPMD
     runtime *)
  let _, o1 = solve_with (Finch.Config.Cpu Finch.Config.Serial) in
  List.iter
    (fun ranks ->
      let _, o2 =
        solve_with (Finch.Config.Gpu { spec = Gpu_sim.Spec.a6000; devices = 1; ranks })
      in
      let scale = Fvm.Field.max_abs (Finch.Solve.field o1 "I") in
      let d = field_diff o1 o2 "I" /. scale in
      if d > 1e-12 then Alcotest.failf "gpu ranks=%d: relative diff %g" ranks d)
    [ 2; 3; 4 ]

let test_gpu_grid_matches_single_device () =
  (* the 2-D band x cell decomposition (gpu:NAME:GxR): for every rank
     count, tiling the cells across devices must reproduce the
     one-device-per-rank schedule BIT-identically — the owned-slice
     uploads plus d2d ghost pushes reconstruct exactly the values a full
     upload would have placed, and the host-side combine is unchanged *)
  List.iter
    (fun ranks ->
      let _, o1 =
        solve_with
          (Finch.Config.Gpu { spec = Gpu_sim.Spec.a6000; devices = 1; ranks })
      in
      List.iter
        (fun devices ->
          let _, o2 =
            solve_with
              (Finch.Config.Gpu { spec = Gpu_sim.Spec.a6000; devices; ranks })
          in
          let d = field_diff o1 o2 "I" in
          if d > 0. then
            Alcotest.failf "grid %dx%d: I diff %g" devices ranks d;
          let dt = field_diff o1 o2 "T" in
          if dt > 0. then
            Alcotest.failf "grid %dx%d: T diff %g" devices ranks dt)
        [ 2; 4 ])
    [ 1; 2; 3; 4 ]

let test_gpu_grid_overlap_matches_sync () =
  (* double-buffered per-device streams reorder only the modelled
     timeline, never the arithmetic *)
  let solve overlap =
    let built = Bte.Setup.build tiny in
    Finch.Problem.use_cuda ~devices:2 ~ranks:2 built.Bte.Setup.problem;
    Finch.Problem.set_overlap built.Bte.Setup.problem overlap;
    Finch.Solve.solve ~band_index:"b" built.Bte.Setup.problem
  in
  let o1 = solve false and o2 = solve true in
  let d = field_diff o1 o2 "I" in
  if d > 0. then Alcotest.failf "grid overlap vs sync: I diff %g" d;
  let dt = field_diff o1 o2 "T" in
  if dt > 0. then Alcotest.failf "grid overlap vs sync: T diff %g" dt

let test_temperature_bounds () =
  (* temperature stays within [cold, hot] and heats up near the hot wall *)
  let built, o = solve_with (Finch.Config.Cpu Finch.Config.Serial) in
  let sc = built.Bte.Setup.scenario in
  let ft = Finch.Solve.field o "T" in
  Fvm.Field.iter ft (fun _ _ t ->
      check_bool "T within scenario bounds" true
        (t >= sc.Bte.Setup.t_cold -. 1e-6 && t <= sc.Bte.Setup.t_hot +. 1e-6));
  (* the row adjacent to the hot wall is warmer than the row at the cold wall *)
  let top = Bte.Diag.profile_x ft ~nx:sc.Bte.Setup.nx ~j:(sc.Bte.Setup.ny - 1) in
  let bottom = Bte.Diag.profile_x ft ~nx:sc.Bte.Setup.nx ~j:0 in
  let avg a = Array.fold_left ( +. ) 0. a /. float_of_int (Array.length a) in
  check_bool "hot side warmer" true (avg top > avg bottom)

let test_heating_monotone_in_time () =
  let built = Bte.Setup.build { tiny with Bte.Setup.nsteps = 4 } in
  let o4 = Finch.Solve.solve built.Bte.Setup.problem in
  let built2 = Bte.Setup.build { tiny with Bte.Setup.nsteps = 12 } in
  let o12 = Finch.Solve.solve built2.Bte.Setup.problem in
  let mean o =
    let ft = Finch.Solve.field o "T" in
    Fvm.Field.sum_comp ft 0 /. float_of_int (Fvm.Field.ncells ft)
  in
  check_bool "more steps, more heat" true (mean o12 > mean o4)

let test_uniform_equilibrium_is_steady () =
  (* all-isothermal box at the initial temperature: nothing may change *)
  let sc = { tiny with Bte.Setup.t_hot = tiny.Bte.Setup.t_cold } in
  let built = Bte.Setup.build sc in
  let o = Finch.Solve.solve built.Bte.Setup.problem in
  let ft = Finch.Solve.field o "T" in
  Fvm.Field.iter ft (fun _ _ t ->
      Tutil.check_close ~eps:1e-9 "steady equilibrium" sc.Bte.Setup.t_cold t)

let test_symmetry_of_solution () =
  (* hot spot centred on the top wall + symmetric sides: the temperature
     field must be mirror-symmetric about the vertical midline *)
  let sc = { tiny with Bte.Setup.nx = 12; hot_center = 1e-6; lx = 2e-6 } in
  let built = Bte.Setup.build sc in
  let o = Finch.Solve.solve built.Bte.Setup.problem in
  let ft = Finch.Solve.field o "T" in
  for j = 0 to sc.Bte.Setup.ny - 1 do
    for i = 0 to (sc.Bte.Setup.nx / 2) - 1 do
      let a = Fvm.Field.get ft ((j * sc.Bte.Setup.nx) + i) 0 in
      let b = Fvm.Field.get ft ((j * sc.Bte.Setup.nx) + (sc.Bte.Setup.nx - 1 - i)) 0 in
      Tutil.check_close ~eps:1e-9 "mirror symmetry" a b
    done
  done

(* initial condition: local equilibrium at a linearly varying temperature,
   with Io, beta and T all consistent with it (otherwise the first
   relaxation step legitimately exchanges energy with the "old" fields) *)
let set_linear_profile_initials (built : Bte.Setup.built) (p : Finch.Problem.t) =
  let nd = built.Bte.Setup.angles.Bte.Angles.ndirs in
  let t_of pos = 300. +. (30. *. pos.(1) /. 2e-6) in
  p.Finch.Problem.initials <-
    List.map
      (fun (name, spec) ->
        match name with
        | "I" ->
          ( name,
            Finch.Problem.Init_fn
              (fun pos comp ->
                Bte.Equilibrium.i0 built.Bte.Setup.eqtab (comp / nd) (t_of pos)) )
        | "Io" ->
          ( name,
            Finch.Problem.Init_fn
              (fun pos b -> Bte.Equilibrium.i0 built.Bte.Setup.eqtab b (t_of pos)) )
        | "beta" ->
          ( name,
            Finch.Problem.Init_fn
              (fun pos b ->
                Bte.Scattering.band_rate
                  (Bte.Dispersion.band built.Bte.Setup.disp b)
                  (t_of pos)) )
        | "T" -> name, Finch.Problem.Init_fn (fun pos _ -> t_of pos)
        | _ -> name, spec)
      p.Finch.Problem.initials

let test_energy_conservation_adiabatic () =
  (* closed box (symmetry on all four sides = no net flux), nonuniform
     initial temperature, Per_band reduction: total phonon energy must be
     conserved over the run *)
  let built = Bte.Setup.build { tiny with Bte.Setup.nsteps = 10 } in
  let p = built.Bte.Setup.problem in
  (* replace the isothermal walls by symmetry on regions 1 and 3 *)
  let bcctx =
    { Bte.Bc.disp = built.Bte.Setup.disp;
      eqtab = built.Bte.Setup.eqtab;
      angles = built.Bte.Setup.angles }
  in
  p.Finch.Problem.bcs <- [];
  let vI = Option.get (Finch.Problem.find_variable p "I") in
  List.iter
    (fun r ->
      Finch.Problem.boundary p vI r Finch.Config.Flux "symmetry(I,Sx,Sy,b,d,normal)")
    [ 1; 2; 3; 4 ];
  ignore bcctx;
  (* exact conservation needs the per-band reduction *)
  let tmodel =
    Bte.Temperature.make ~reduction:Bte.Temperature.Per_band
      ~disp:built.Bte.Setup.disp ~eqtab:built.Bte.Setup.eqtab
      ~angles:built.Bte.Setup.angles ()
  in
  p.Finch.Problem.post_step <- [];
  Finch.Problem.post_step_function p (Bte.Temperature.post_step tmodel);
  (* non-uniform initial condition: equilibrium at a linearly varying T *)
  set_linear_profile_initials built p;
  let st0 = Finch.Lower.build p in
  let e0 =
    Bte.Diag.total_energy built.Bte.Setup.mesh st0.Finch.Lower.u
      built.Bte.Setup.disp built.Bte.Setup.angles
  in
  let o = Finch.Solve.solve p in
  let e1 =
    Bte.Diag.total_energy built.Bte.Setup.mesh (Finch.Solve.field o "I")
      built.Bte.Setup.disp built.Bte.Setup.angles
  in
  Tutil.check_close ~eps:1e-9 "energy conserved" e0 e1

let test_scalar_energy_near_conservation () =
  (* the paper-style scalar reduction conserves energy only up to the
     frozen-rate approximation; the drift over a few steps must be tiny *)
  let built = Bte.Setup.build { tiny with Bte.Setup.nsteps = 10 } in
  let p = built.Bte.Setup.problem in
  p.Finch.Problem.bcs <- [];
  let vI = Option.get (Finch.Problem.find_variable p "I") in
  List.iter
    (fun r ->
      Finch.Problem.boundary p vI r Finch.Config.Flux "symmetry(I,Sx,Sy,b,d,normal)")
    [ 1; 2; 3; 4 ];
  set_linear_profile_initials built p;
  let st0 = Finch.Lower.build p in
  let e0 =
    Bte.Diag.total_energy built.Bte.Setup.mesh st0.Finch.Lower.u
      built.Bte.Setup.disp built.Bte.Setup.angles
  in
  let o = Finch.Solve.solve p in
  let e1 =
    Bte.Diag.total_energy built.Bte.Setup.mesh (Finch.Solve.field o "I")
      built.Bte.Setup.disp built.Bte.Setup.angles
  in
  Tutil.check_close ~eps:1e-4 "energy nearly conserved" e0 e1

let test_3d_coarse_run () =
  (* the paper's "very coarse-grained 3-D runs ... performed successfully" *)
  let sc =
    { Bte.Setup3d.coarse with Bte.Setup3d.nx = 5; ny = 5; nz = 5;
      n_azimuthal = 4; n_polar = 2; n_la_bands = 3; nsteps = 8 }
  in
  let built = Bte.Setup3d.build sc in
  let o = Finch.Solve.solve built.Bte.Setup3d.problem in
  let ft = Finch.Solve.field o "T" in
  let hotter = ref 0 in
  Fvm.Field.iter ft (fun _ _ t ->
      check_bool "bounded" true (t >= sc.Bte.Setup3d.t_cold -. 1e-9 && t <= sc.Bte.Setup3d.t_hot);
      if t > sc.Bte.Setup3d.t_cold +. 1e-3 then incr hotter);
  check_bool "some heating happened" true (!hotter > 0);
  (* the hottest cell touches the ceiling *)
  let stats =
    Bte.Diag.temperature_stats built.Bte.Setup3d.mesh ft
      ~t_ambient:sc.Bte.Setup3d.t_cold
  in
  check_bool "peak near ceiling" true (stats.Bte.Diag.peak_pos.(2) > 1.4e-6)

let test_point_implicit_large_dt () =
  (* with the point-implicit stepper the BTE runs stably at a dt more than
     an order of magnitude beyond the explicit relaxation bound *)
  let disp = Bte.Dispersion.make ~n_la:tiny.Bte.Setup.n_la_bands in
  let explicit_bound = Bte.Setup.cfl_dt tiny disp in
  let sc = { tiny with Bte.Setup.dt = 20. *. explicit_bound; nsteps = 10 } in
  let built =
    Bte.Setup.build ~stepper:Finch.Config.Euler_point_implicit sc
  in
  check_bool "dt kept above the explicit bound" true
    (built.Bte.Setup.scenario.Bte.Setup.dt > 5. *. explicit_bound);
  let o = Finch.Solve.solve built.Bte.Setup.problem in
  let ft = Finch.Solve.field o "T" in
  Fvm.Field.iter ft (fun _ _ t ->
      check_bool "physical temperatures at large dt" true
        (t >= sc.Bte.Setup.t_cold -. 1e-6 && t <= sc.Bte.Setup.t_hot +. 1e-6));
  (* and it heats faster in wall-clock-per-physical-time terms: more
     physical time elapsed than the explicit run with the same steps *)
  let explicit = Bte.Setup.build { sc with Bte.Setup.dt = explicit_bound } in
  check_bool "covers more physical time" true
    (built.Bte.Setup.scenario.Bte.Setup.dt
     > 3. *. explicit.Bte.Setup.scenario.Bte.Setup.dt)

let test_unstructured_mesh_bte () =
  (* the DSL solver is mesh-generic: run the hot-spot scenario on a
     triangulated mesh and check physicality + hot-side heating (the
     reference solver cannot do this — it is structured-only) *)
  let sc = { tiny with Bte.Setup.nsteps = 10 } in
  let built = Bte.Setup.build sc in
  let p = built.Bte.Setup.problem in
  let tri_mesh =
    Fvm.Mesh_gen.triangulated_rectangle ~nx:sc.Bte.Setup.nx ~ny:sc.Bte.Setup.ny
      ~lx:sc.Bte.Setup.lx ~ly:sc.Bte.Setup.ly ()
  in
  p.Finch.Problem.mesh <- Some tri_mesh;
  let o = Finch.Solve.solve p in
  let ft = Finch.Solve.field o "T" in
  let warm = ref 0 in
  Fvm.Field.iter ft (fun _ _ t ->
      check_bool "bounded on triangles" true
        (t >= sc.Bte.Setup.t_cold -. 1e-9 && t <= sc.Bte.Setup.t_hot +. 1e-9);
      if t > sc.Bte.Setup.t_cold +. 0.01 then incr warm);
  check_bool "heating on triangles" true (!warm > 0);
  let stats =
    Bte.Diag.temperature_stats tri_mesh ft ~t_ambient:sc.Bte.Setup.t_cold
  in
  check_bool "peak near the hot wall" true (stats.Bte.Diag.peak_pos.(1) > 1.5e-6)

let test_thin_film_size_effect () =
  (* the size effect in miniature: a thin film conducts at a small
     fraction of the diffusive limit, a thicker one at a larger fraction *)
  let cfg =
    { Bte.Film.default_config with Bte.Film.ncells = 16; ndirs = 8;
      n_la_bands = 4; max_steps = 4000; flux_tol = 1e-3 }
  in
  let thin = Bte.Film.effective_conductivity ~cfg ~thickness:50e-9 () in
  let thick = Bte.Film.effective_conductivity ~cfg ~thickness:500e-9 () in
  check_bool "thin well below bulk" true (thin.Bte.Film.ratio < 0.5);
  check_bool "thicker conducts better" true
    (thick.Bte.Film.ratio > thin.Bte.Film.ratio +. 0.1);
  check_bool "ratios within (0,1]" true
    (thin.Bte.Film.ratio > 0. && thick.Bte.Film.ratio <= 1.05);
  (* at steady state the flux is uniform through the slab *)
  check_bool "steady flux uniform" true (thin.Bte.Film.flux_uniformity < 0.05)

let test_reference_throughput_positive () =
  let r = Bte.Reference.create tiny in
  let rate = Bte.Reference.measure_sweep_rate r ~repeats:3 in
  check_bool "positive throughput" true (rate > 1e4)

let test_diag_stats () =
  let built, o = solve_with (Finch.Config.Cpu Finch.Config.Serial) in
  let ft = Finch.Solve.field o "T" in
  let s =
    Bte.Diag.temperature_stats built.Bte.Setup.mesh ft
      ~t_ambient:tiny.Bte.Setup.t_cold
  in
  check_bool "max >= min" true (s.Bte.Diag.t_max >= s.Bte.Diag.t_min);
  check_bool "mean between" true
    (s.Bte.Diag.t_mean >= s.Bte.Diag.t_min && s.Bte.Diag.t_mean <= s.Bte.Diag.t_max);
  (* the peak is near the hot wall (top) *)
  check_bool "peak near top" true (s.Bte.Diag.peak_pos.(1) > 1.5e-6);
  (* CSV dump round trip: right number of lines *)
  let path = Filename.temp_file "bte" ".csv" in
  Bte.Diag.to_csv built.Bte.Setup.mesh ft ~comp:0 path;
  let ic = open_in path in
  let lines = ref 0 in
  (try
     while true do
       ignore (input_line ic);
       incr lines
     done
   with End_of_file -> close_in ic);
  Sys.remove path;
  Alcotest.(check int) "csv lines" (1 + (tiny.Bte.Setup.nx * tiny.Bte.Setup.ny)) !lines;
  (* VTK dump: header + counts sanity *)
  let vtk = Filename.temp_file "bte" ".vtk" in
  Bte.Diag.to_vtk built.Bte.Setup.mesh [ "T", ft, 0 ] vtk;
  let ic = open_in vtk in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove vtk;
  check_bool "vtk header" true (Tutil.contains contents "DATASET UNSTRUCTURED_GRID");
  check_bool "vtk cell data" true
    (Tutil.contains contents
       (Printf.sprintf "CELL_DATA %d" (tiny.Bte.Setup.nx * tiny.Bte.Setup.ny)));
  check_bool "vtk scalars" true (Tutil.contains contents "SCALARS T double 1")

let suite =
  ( "bte-solver",
    [
      Alcotest.test_case "DSL matches hand-written reference" `Quick
        test_dsl_matches_reference;
      Alcotest.test_case "band-parallel == serial" `Quick
        test_band_parallel_matches_serial;
      Alcotest.test_case "cell-parallel == serial" `Quick
        test_cell_parallel_matches_serial;
      Alcotest.test_case "pool executors == serial (exact)" `Quick
        test_pool_executors_match_serial;
      Alcotest.test_case "tape == closure on hotspot (exact)" `Quick
        test_tape_matches_closure_on_hotspot;
      Alcotest.test_case "gpu == serial" `Quick test_gpu_matches_serial;
      Alcotest.test_case "multi-gpu == serial" `Quick test_multi_gpu_matches_serial;
      Alcotest.test_case "gpu grid == single device (bitwise)" `Quick
        test_gpu_grid_matches_single_device;
      Alcotest.test_case "gpu grid overlap == sync (bitwise)" `Quick
        test_gpu_grid_overlap_matches_sync;
      Alcotest.test_case "temperature bounded and directional" `Quick
        test_temperature_bounds;
      Alcotest.test_case "heating monotone in time" `Quick
        test_heating_monotone_in_time;
      Alcotest.test_case "uniform equilibrium is steady" `Quick
        test_uniform_equilibrium_is_steady;
      Alcotest.test_case "mirror symmetry" `Quick test_symmetry_of_solution;
      Alcotest.test_case "adiabatic energy conservation (per-band)" `Quick
        test_energy_conservation_adiabatic;
      Alcotest.test_case "near conservation (scalar reduction)" `Quick
        test_scalar_energy_near_conservation;
      Alcotest.test_case "coarse 3-D run" `Quick test_3d_coarse_run;
      Alcotest.test_case "point-implicit at large dt" `Quick
        test_point_implicit_large_dt;
      Alcotest.test_case "unstructured (triangle) mesh" `Quick
        test_unstructured_mesh_bte;
      Alcotest.test_case "thin-film size effect" `Quick test_thin_film_size_effect;
      Alcotest.test_case "reference throughput" `Quick
        test_reference_throughput_positive;
      Alcotest.test_case "diagnostics" `Quick test_diag_stats;
    ] )
