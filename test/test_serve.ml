(* Serve-layer tests: Solve_request JSON round-trips (property), the
   Finch facade vs the hand-wired pipeline (bit-identity), the program
   cache counters, scheduler admission/queueing/deadline edge cases, and
   the headline batching property — batched GPU execution bit-identical
   to solo solves across scenario x backend x opt level. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let () = Bte.Setup.register_scenarios ()

(* run [f] with the metrics registry enabled, restoring the previous
   enablement after (other suites depend on the default-off state) *)
let with_metrics f =
  let was = Prt.Metrics.enabled () in
  Prt.Metrics.enable ();
  Fun.protect ~finally:(fun () -> if not was then Prt.Metrics.disable ()) f

let cval name = Prt.Metrics.value (Prt.Metrics.counter name)

(* tiny request: seconds-scale full matrix *)
let tiny ?(scenario = "hotspot") ?(nx = 8) ?(nsteps = 4)
    ?(backend = Finch.Config.Cpu Finch.Config.Serial)
    ?(opt_level = Finch.Config.O2) ?t_hot ?deadline_s ?label () =
  { (Finch.Solve_request.make ?t_hot ?deadline_s ?label scenario) with
    Finch.Solve_request.nx;
    ny = 8;
    ndirs = 4;
    nbands = 3;
    nsteps;
    backend;
    opt_level }

let gpu1 = Finch.Config.Gpu { spec = Gpu_sim.Spec.a6000; devices = 1; ranks = 1 }

(* ---------- Solve_request JSON ---------- *)

let arb_request =
  let open QCheck.Gen in
  let backend =
    oneofl
      [ Finch.Config.Cpu Finch.Config.Serial;
        Finch.Config.Cpu (Finch.Config.Threaded 3);
        Finch.Config.Cpu (Finch.Config.Band_parallel 2);
        Finch.Config.Cpu (Finch.Config.Cell_parallel 4);
        Finch.Config.Cpu (Finch.Config.Hybrid (2, 2));
        gpu1;
        Finch.Config.Gpu { spec = Gpu_sim.Spec.a6000; devices = 2; ranks = 2 } ]
  in
  let gen =
    let* scenario = oneofl [ "hotspot"; "corner"; "made-up" ] in
    let* nx = 1 -- 64 and* ny = 1 -- 64 in
    let* ndirs = 2 -- 16 and* nbands = 1 -- 12 and* nsteps = 1 -- 40 in
    let* t_hot = opt (float_range 1. 900.) in
    let* t_cold = opt (float_range 1. 900.) in
    let* backend = backend in
    let* opt_level =
      oneofl [ Finch.Config.O0; Finch.Config.O1; Finch.Config.O2 ]
    in
    let* eval_mode =
      oneofl [ Finch.Config.Closure; Finch.Config.Tape; Finch.Config.Native ]
    in
    let* overlap = bool in
    let* deadline_s = opt (float_range 0. 60.) in
    let* label = opt (string_size ~gen:printable (1 -- 20)) in
    return
      { (Finch.Solve_request.make ?t_hot ?t_cold ?deadline_s ?label scenario) with
        Finch.Solve_request.nx;
        ny;
        ndirs;
        nbands;
        nsteps;
        backend;
        opt_level;
        eval_mode;
        overlap }
  in
  QCheck.make ~print:Finch.Solve_request.to_string gen

let prop_json_roundtrip =
  QCheck.Test.make ~name:"request JSON round-trips" ~count:300 arb_request
    (fun r ->
      match Finch.Solve_request.of_string (Finch.Solve_request.to_string r) with
      | Ok r' -> Finch.Solve_request.equal r r'
      | Error e -> QCheck.Test.fail_reportf "parse failed: %s" e)

let test_json_defaults () =
  (* missing optional members take the make defaults *)
  match Finch.Solve_request.of_string {|{"scenario":"hotspot"}|} with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok r ->
    check_bool "defaults" true
      (Finch.Solve_request.equal r (Finch.Solve_request.make "hotspot"))

let test_json_rejects () =
  let bad s =
    match Finch.Solve_request.of_string s with
    | Ok _ -> Alcotest.failf "accepted %s" s
    | Error _ -> ()
  in
  bad {|{"nx": 4}|};                         (* no scenario *)
  bad {|{"scenario":"hotspot","nx":0}|};     (* validate: positive dims *)
  bad {|{"scenario":"hotspot","deadline_s":-1}|};
  bad {|{"scenario":"hotspot","backend":"warp:9"}|};
  bad {|{"scenario":"hotspot"} trailing|};   (* trailing garbage *)
  bad {|{"scenario":}|}

let test_batch_key () =
  let r = tiny () in
  let k = Finch.Solve_request.batch_key in
  check_string "temps excluded" (k r) (k { r with Finch.Solve_request.t_hot = Some 401. });
  check_string "label excluded" (k r)
    (k { r with Finch.Solve_request.label = Some "x" });
  check_string "deadline excluded" (k r)
    (k { r with Finch.Solve_request.deadline_s = Some 9. });
  check_bool "dims included" false
    (k r = k { r with Finch.Solve_request.nx = 9 });
  check_bool "backend included" false
    (k r = k { r with Finch.Solve_request.backend = gpu1 });
  check_bool "opt included" false
    (k r = k { r with Finch.Solve_request.opt_level = Finch.Config.O0 })

(* ---------- facade ---------- *)

let test_facade_matches_direct () =
  let req = tiny () in
  let res =
    match Finch.solve req with
    | Ok r -> r
    | Error e -> Alcotest.failf "facade: %s" (Finch.Solve_error.to_string e)
  in
  (* the hand-wired pipeline the facade replaces *)
  let sc =
    Bte.Setup.scenario_of_request Bte.Setup.small_hotspot req
  in
  let built = Bte.Setup.build sc in
  let direct =
    Finch.Solve.solve ~band_index:"b" ~post_io:Bte.Setup.post_io
      built.Bte.Setup.problem
  in
  check_string "solution name" "T" res.Finch.Solve_result.solution_name;
  Alcotest.(check (float 0.))
    "bit-identical to direct pipeline" 0.
    (Fvm.Field.max_abs_diff res.Finch.Solve_result.solution
       (Finch.Solve.field direct "T"))

let test_facade_unknown_scenario () =
  match Finch.solve (Finch.Solve_request.make "no-such-scenario") with
  | Error (Finch.Solve_error.Unknown_scenario s) ->
    check_string "name echoed" "no-such-scenario" s
  | Error e -> Alcotest.failf "wrong error: %s" (Finch.Solve_error.to_string e)
  | Ok _ -> Alcotest.fail "solved an unregistered scenario"

let test_facade_invalid_request () =
  match Finch.solve (tiny ~nx:0 ()) with
  | Error (Finch.Solve_error.Invalid_request _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Finch.Solve_error.to_string e)
  | Ok _ -> Alcotest.fail "solved an invalid request"

(* ---------- scheduler edge cases ---------- *)

let test_empty_drain () =
  let t = Finch_serve.Scheduler.create () in
  Finch_serve.Scheduler.drain t;
  check_int "still empty" 0 (Finch_serve.Scheduler.queue_depth t)

let test_queue_full () =
  let t = Finch_serve.Scheduler.create ~max_queue:2 () in
  let t1 = Finch_serve.Scheduler.submit t (tiny ()) in
  let t2 = Finch_serve.Scheduler.submit t (tiny ()) in
  let t3 = Finch_serve.Scheduler.submit t (tiny ()) in
  check_bool "first admitted" true (Finch_serve.Scheduler.outcome t1 = None);
  check_bool "second admitted" true (Finch_serve.Scheduler.outcome t2 = None);
  (match Finch_serve.Scheduler.outcome t3 with
   | Some (Finch_serve.Scheduler.Rejected m) ->
     check_bool "reason names the bound" true (Tutil.contains m "queue full")
   | _ -> Alcotest.fail "third request was not rejected");
  Finch_serve.Scheduler.drain t;
  check_bool "admitted requests completed" true
    (match Finch_serve.Scheduler.outcome t1, Finch_serve.Scheduler.outcome t2 with
     | Some (Finch_serve.Scheduler.Completed _),
       Some (Finch_serve.Scheduler.Completed _) -> true
     | _ -> false)

let test_invalid_rejected_at_submit () =
  let t = Finch_serve.Scheduler.create () in
  let tk = Finch_serve.Scheduler.submit t (tiny ~nx:0 ()) in
  (match Finch_serve.Scheduler.outcome tk with
   | Some (Finch_serve.Scheduler.Rejected m) ->
     check_bool "reason" true (Tutil.contains m "invalid request")
   | _ -> Alcotest.fail "invalid request was not rejected at submit");
  check_int "never queued" 0 (Finch_serve.Scheduler.queue_depth t)

let test_deadline_expiry () =
  (* fake clock: submission at t=0, execution at t=2 — the head request
     (no deadline) still runs; the queued one with a 0.5 s deadline has
     expired by the time it is picked *)
  let now = ref 0. in
  let t = Finch_serve.Scheduler.create ~now:(fun () -> !now) () in
  let t1 = Finch_serve.Scheduler.submit t (tiny ()) in
  let t2 = Finch_serve.Scheduler.submit t (tiny ~deadline_s:0.5 ()) in
  now := 2.;
  Finch_serve.Scheduler.drain t;
  check_bool "head completed" true
    (match Finch_serve.Scheduler.outcome t1 with
     | Some (Finch_serve.Scheduler.Completed _) -> true
     | _ -> false);
  (match Finch_serve.Scheduler.outcome t2 with
   | Some (Finch_serve.Scheduler.Timed_out by) ->
     Tutil.check_close ~eps:1e-9 "exceeded by" 1.5 by
   | _ -> Alcotest.fail "deadlined request did not time out")

let test_default_deadline () =
  let now = ref 0. in
  let t =
    Finch_serve.Scheduler.create ~default_deadline_s:1. ~now:(fun () -> !now) ()
  in
  let tk = Finch_serve.Scheduler.submit t (tiny ()) in
  now := 3.;
  Finch_serve.Scheduler.drain t;
  check_bool "timed out under the scheduler default" true
    (match Finch_serve.Scheduler.outcome tk with
     | Some (Finch_serve.Scheduler.Timed_out _) -> true
     | _ -> false)

let test_cache_hit_counters () =
  with_metrics (fun () ->
      let h0 = cval "serve.program_hits" and m0 = cval "serve.program_misses" in
      let t = Finch_serve.Scheduler.create ~batching:false () in
      let outs =
        Finch_serve.Scheduler.run_all t
          [ tiny (); tiny (); tiny () ]
      in
      check_int "all completed" 3
        (List.length
           (List.filter
              (function Finch_serve.Scheduler.Completed _ -> true | _ -> false)
              outs));
      let hits = cval "serve.program_hits" - h0 in
      let misses = cval "serve.program_misses" - m0 in
      check_bool "repeat requests hit the program cache" true (hits >= 2);
      check_bool "at most one cold build" true (misses <= 1))

let test_cache_off_no_counters () =
  with_metrics (fun () ->
      Finch_serve.Programs.clear ();
      let h0 = cval "serve.program_hits" and m0 = cval "serve.program_misses" in
      let t = Finch_serve.Scheduler.create ~use_cache:false ~batching:false () in
      ignore (Finch_serve.Scheduler.run_all t [ tiny (); tiny () ]);
      check_int "no hits with the cache off" h0 (cval "serve.program_hits");
      check_int "no misses with the cache off" m0 (cval "serve.program_misses"))

let test_batch_split_incompatible () =
  with_metrics (fun () ->
      let b0 = cval "serve.batches" in
      let t = Finch_serve.Scheduler.create () in
      (* same program hash only for the two nx=8 GPU requests; the nx=9
         request must be left out of their batch and run alone *)
      let outs =
        Finch_serve.Scheduler.run_all t
          [ tiny ~backend:gpu1 ~t_hot:350. ();
            tiny ~backend:gpu1 ~nx:9 ();
            tiny ~backend:gpu1 ~t_hot:360. () ]
      in
      check_int "all three completed" 3
        (List.length
           (List.filter
              (function Finch_serve.Scheduler.Completed _ -> true | _ -> false)
              outs));
      check_int "exactly one batch formed" 1 (cval "serve.batches" - b0))

let test_cpu_requests_never_batch () =
  with_metrics (fun () ->
      let b0 = cval "serve.batches" in
      let t = Finch_serve.Scheduler.create () in
      let outs =
        Finch_serve.Scheduler.run_all t [ tiny (); tiny (); tiny () ]
      in
      check_int "all completed" 3
        (List.length
           (List.filter
              (function Finch_serve.Scheduler.Completed _ -> true | _ -> false)
              outs));
      check_int "no CPU batches" 0 (cval "serve.batches" - b0))

(* ---------- batched vs solo bit-identity ---------- *)

(* the ISSUE acceptance matrix: scenario x {serial, cells:2, gpu} x
   {O0, O2}; a three-request temperature sweep run through a batching
   scheduler with the caches on must produce exactly the fields the
   cold per-request pipeline produces *)
let test_batched_matches_solo () =
  List.iter
    (fun scenario ->
      List.iter
        (fun backend ->
          List.iter
            (fun opt_level ->
              let base_t =
                match scenario with "corner" -> 150. | _ -> 350.
              in
              let reqs =
                List.map
                  (fun i ->
                    tiny ~scenario ~backend ~opt_level
                      ~t_hot:(base_t +. (5. *. float_of_int i))
                      ~label:(Printf.sprintf "t%d" i) ())
                  [ 0; 1; 2 ]
              in
              let solve_via ~batching ~use_cache =
                let t =
                  Finch_serve.Scheduler.create ~batching ~use_cache
                    ~post_io:Bte.Setup.post_io ()
                in
                List.map
                  (function
                    | Finch_serve.Scheduler.Completed r ->
                      r.Finch.Solve_result.solution
                    | Finch_serve.Scheduler.Rejected m ->
                      Alcotest.failf "rejected: %s" m
                    | Finch_serve.Scheduler.Timed_out _ ->
                      Alcotest.fail "timed out")
                  (Finch_serve.Scheduler.run_all t reqs)
              in
              let batched = solve_via ~batching:true ~use_cache:true in
              let solo = solve_via ~batching:false ~use_cache:false in
              List.iteri
                (fun i (b, s) ->
                  Alcotest.(check (float 0.))
                    (Printf.sprintf "%s %s O%s #%d"
                       scenario
                       (Finch.Config.target_name backend)
                       (Finch.Config.opt_level_name opt_level)
                       i)
                    0.
                    (Fvm.Field.max_abs_diff b s))
                (List.combine batched solo))
            [ Finch.Config.O0; Finch.Config.O2 ])
        [ Finch.Config.Cpu Finch.Config.Serial;
          Finch.Config.Cpu (Finch.Config.Cell_parallel 2);
          gpu1 ])
    [ "hotspot"; "corner" ]

let test_batch_counters_gpu () =
  with_metrics (fun () ->
      let b0 = cval "serve.batches" and l0 = cval "serve.batched_launches" in
      let t = Finch_serve.Scheduler.create ~post_io:Bte.Setup.post_io () in
      let outs =
        Finch_serve.Scheduler.run_all t
          [ tiny ~backend:gpu1 ~t_hot:350. ();
            tiny ~backend:gpu1 ~t_hot:355. () ]
      in
      check_int "both completed" 2
        (List.length
           (List.filter
              (function Finch_serve.Scheduler.Completed _ -> true | _ -> false)
              outs));
      check_int "one batch" 1 (cval "serve.batches" - b0);
      check_bool "batched launches recorded" true
        (cval "serve.batched_launches" - l0 > 0))

(* ---------- batched-IR analysis gate ---------- *)

(* the scheduler's second gate: the request-batched IR itself is linted
   before dispatch.  On a compatible GPU batch the rewrite must lint
   clean (so batching actually runs, no silent solo fallback) and keep
   the documented shape: kernels stay single batched launches, host
   phases and transfers run under a per-request loop *)
let test_batched_ir_lints_clean () =
  with_metrics (fun () ->
      let prep req =
        match Finch.prepare req with
        | Ok p -> p.Finch.pr_problem
        | Error e -> Alcotest.fail (Finch.Solve_error.to_string e)
      in
      let problems =
        Array.of_list
          (List.map prep
             [ tiny ~backend:gpu1 ~t_hot:350. ();
               tiny ~backend:gpu1 ~t_hot:355. () ])
      in
      let ir =
        Finch_serve.Batch.batched_ir ~post_io:Bte.Setup.post_io problems
      in
      let count pred =
        Finch.Ir.fold (fun n node -> if pred node then n + 1 else n) 0 ir
      in
      let batch_kernels =
        count (function
          | Finch.Ir.Kernel { kname; _ } ->
            let n = String.length kname in
            n >= 6 && String.sub kname (n - 6) 6 = "_batch"
          | _ -> false)
      in
      check_bool "kernels kept as batched launches" true (batch_kernels > 0);
      check_int "no un-batched kernels" batch_kernels
        (count (function Finch.Ir.Kernel _ -> true | _ -> false));
      check_bool "host phases wrapped per request" true
        (count (function
           | Finch.Ir.Loop { range = Finch.Ir.Index "request"; _ } -> true
           | _ -> false)
         > 0);
      let rep = Finch_serve.Batch.check ~post_io:Bte.Setup.post_io problems in
      check_int "batched IR lints clean" 0
        (List.length rep.Finch_analysis.Driver.findings);
      (* and the scheduler therefore batches without falling back *)
      let f0 = cval "serve.batch_fallbacks"
      and e0 = cval "serve.batch_analysis_errors" in
      let t = Finch_serve.Scheduler.create ~post_io:Bte.Setup.post_io () in
      let outs =
        Finch_serve.Scheduler.run_all t
          [ tiny ~backend:gpu1 ~t_hot:350. ();
            tiny ~backend:gpu1 ~t_hot:355. () ]
      in
      check_int "both completed" 2
        (List.length
           (List.filter
              (function Finch_serve.Scheduler.Completed _ -> true | _ -> false)
              outs));
      check_int "no analysis errors on the batched IR" 0
        (cval "serve.batch_analysis_errors" - e0);
      check_int "no solo fallback" 0 (cval "serve.batch_fallbacks" - f0))

let suite =
  ( "serve",
    [
      QCheck_alcotest.to_alcotest prop_json_roundtrip;
      Alcotest.test_case "request JSON defaults" `Quick test_json_defaults;
      Alcotest.test_case "request JSON rejects" `Quick test_json_rejects;
      Alcotest.test_case "batch key scope" `Quick test_batch_key;
      Alcotest.test_case "facade matches direct pipeline" `Quick
        test_facade_matches_direct;
      Alcotest.test_case "facade unknown scenario" `Quick
        test_facade_unknown_scenario;
      Alcotest.test_case "facade invalid request" `Quick
        test_facade_invalid_request;
      Alcotest.test_case "scheduler empty drain" `Quick test_empty_drain;
      Alcotest.test_case "scheduler queue full" `Quick test_queue_full;
      Alcotest.test_case "scheduler invalid at submit" `Quick
        test_invalid_rejected_at_submit;
      Alcotest.test_case "scheduler deadline expiry" `Quick
        test_deadline_expiry;
      Alcotest.test_case "scheduler default deadline" `Quick
        test_default_deadline;
      Alcotest.test_case "program cache hit counters" `Quick
        test_cache_hit_counters;
      Alcotest.test_case "cache off leaves counters alone" `Quick
        test_cache_off_no_counters;
      Alcotest.test_case "incompatible request splits batch" `Quick
        test_batch_split_incompatible;
      Alcotest.test_case "cpu requests never batch" `Quick
        test_cpu_requests_never_batch;
      Alcotest.test_case "batched matches solo (matrix)" `Quick
        test_batched_matches_solo;
      Alcotest.test_case "gpu batch counters" `Quick test_batch_counters_gpu;
      Alcotest.test_case "batched IR lints clean" `Quick
        test_batched_ir_lints_clean;
    ] )
