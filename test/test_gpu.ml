(* GPU simulator tests: device specs, roofline model, memory transfers,
   kernel execution semantics, streams and the profiler. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mk_host n v =
  let a = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in
  Bigarray.Array1.fill a v;
  a

let test_specs () =
  let a = Gpu_sim.Spec.a6000 and b = Gpu_sim.Spec.a100 in
  check_bool "A100 more DP flops" true
    (b.Gpu_sim.Spec.fp64_peak_flops > a.Gpu_sim.Spec.fp64_peak_flops);
  check_bool "A100 more bandwidth" true
    (b.Gpu_sim.Spec.mem_bandwidth > a.Gpu_sim.Spec.mem_bandwidth);
  Alcotest.(check string) "by_name" "A6000" (Gpu_sim.Spec.by_name "a6000").Gpu_sim.Spec.name;
  match Gpu_sim.Spec.by_name "H100" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown device should raise"

let test_transfer_time () =
  let s = Gpu_sim.Spec.a6000 in
  Tutil.check_close "zero bytes free" 0. (Gpu_sim.Spec.transfer_time s ~bytes:0);
  let t1 = Gpu_sim.Spec.transfer_time s ~bytes:(16 * 1024 * 1024) in
  let t2 = Gpu_sim.Spec.transfer_time s ~bytes:(32 * 1024 * 1024) in
  check_bool "monotone in bytes" true (t2 > t1);
  check_bool "latency floor" true
    (Gpu_sim.Spec.transfer_time s ~bytes:8 >= s.Gpu_sim.Spec.pcie_latency)

let test_kernel_time_roofline () =
  let s = Gpu_sim.Spec.a6000 in
  let full = s.Gpu_sim.Spec.sm_count * s.Gpu_sim.Spec.max_threads_per_sm in
  (* compute bound: high arithmetic intensity *)
  let t_c = Gpu_sim.Spec.kernel_time s ~threads:full ~flops:1e9 ~dram_bytes:1e3 in
  Tutil.check_close ~eps:1e-6
    "compute bound time"
    (s.Gpu_sim.Spec.kernel_launch_overhead
     +. (1e9 /. (s.Gpu_sim.Spec.fp64_peak_flops *. s.Gpu_sim.Spec.fp64_issue_efficiency)))
    t_c;
  (* memory bound: low intensity *)
  let t_m = Gpu_sim.Spec.kernel_time s ~threads:full ~flops:1e3 ~dram_bytes:1e9 in
  Tutil.check_close ~eps:1e-6 "memory bound time"
    (s.Gpu_sim.Spec.kernel_launch_overhead
     +. (1e9 /. (s.Gpu_sim.Spec.mem_bandwidth *. s.Gpu_sim.Spec.mem_efficiency)))
    t_m;
  (* small grids run slower than saturated ones *)
  let t_small = Gpu_sim.Spec.kernel_time s ~threads:256 ~flops:1e9 ~dram_bytes:1e3 in
  check_bool "occupancy penalty" true (t_small > t_c)

let test_memory_transfers_copy () =
  let dev = Gpu_sim.Memory.create_device Gpu_sim.Spec.a6000 in
  let buf = Gpu_sim.Memory.alloc dev ~label:"x" ~size:100 in
  let host = mk_host 100 3.5 in
  let _ = Gpu_sim.Memory.h2d dev buf host in
  Tutil.check_close "device holds data" 3.5
    (Bigarray.Array1.get buf.Gpu_sim.Memory.device_data 42);
  (* mutate device, read back *)
  Bigarray.Array1.set buf.Gpu_sim.Memory.device_data 42 9.;
  let back = mk_host 100 0. in
  let _ = Gpu_sim.Memory.d2h dev buf back in
  Tutil.check_close "host readback" 9. (Bigarray.Array1.get back 42);
  check_int "h2d bytes" 800 dev.Gpu_sim.Memory.bytes_h2d;
  check_int "d2h bytes" 800 dev.Gpu_sim.Memory.bytes_d2h;
  check_int "buffer h2d count" 1 buf.Gpu_sim.Memory.h2d_count

let test_memory_divergence_is_real () =
  (* host and device memories are genuinely distinct: forgetting a transfer
     leaves the device stale *)
  let dev = Gpu_sim.Memory.create_device Gpu_sim.Spec.a6000 in
  let buf = Gpu_sim.Memory.alloc dev ~label:"x" ~size:4 in
  let host = mk_host 4 1. in
  let _ = Gpu_sim.Memory.h2d dev buf host in
  Bigarray.Array1.set host 0 99.;
  Tutil.check_close "device unaffected by host write" 1.
    (Bigarray.Array1.get buf.Gpu_sim.Memory.device_data 0)

let test_transfer_size_mismatch () =
  let dev = Gpu_sim.Memory.create_device Gpu_sim.Spec.a6000 in
  let buf = Gpu_sim.Memory.alloc dev ~label:"x" ~size:4 in
  match Gpu_sim.Memory.h2d dev buf (mk_host 5 0.) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "size mismatch should raise"

let test_kernel_executes_and_guards () =
  let dev = Gpu_sim.Memory.create_device Gpu_sim.Spec.a6000 in
  let buf = Gpu_sim.Memory.alloc dev ~label:"x" ~size:1000 in
  let k =
    Gpu_sim.Kernel.make ~name:"fill"
      ~cost:{ Gpu_sim.Kernel.flops_per_thread = 1.; dram_bytes_per_thread = 8. }
      (fun tid -> Bigarray.Array1.set buf.Gpu_sim.Memory.device_data tid (float_of_int tid))
  in
  (* 1000 threads in 256-blocks: 1024 launched, guard keeps 1000 *)
  let t = Gpu_sim.Kernel.launch dev k ~nthreads:1000 ~block:256 () in
  check_bool "positive time" true (t > 0.);
  Tutil.check_close "last element" 999.
    (Bigarray.Array1.get buf.Gpu_sim.Memory.device_data 999);
  check_int "one launch" 1 dev.Gpu_sim.Memory.kernel_launches;
  Tutil.check_close "flops accounted" 1000. dev.Gpu_sim.Memory.flops

let test_stream_overlap () =
  let dev = Gpu_sim.Memory.create_device Gpu_sim.Spec.a6000 in
  let clock = Gpu_sim.Stream.create_clock () in
  let st = Gpu_sim.Stream.create dev in
  let buf = Gpu_sim.Memory.alloc dev ~label:"x" ~size:2_000_000 in
  let k =
    Gpu_sim.Kernel.make ~name:"busy"
      ~cost:{ Gpu_sim.Kernel.flops_per_thread = 1e4; dram_bytes_per_thread = 8. }
      (fun _ -> ())
  in
  Gpu_sim.Stream.kernel st clock k ~nthreads:(Bigarray.Array1.dim buf.Gpu_sim.Memory.device_data) ();
  check_bool "stream pending after async launch" true (Gpu_sim.Stream.pending st clock);
  (* overlapped CPU work advances the host clock *)
  Gpu_sim.Stream.host_work clock ~dur:1e-4 (fun () -> ());
  Gpu_sim.Stream.synchronize st clock;
  check_bool "not pending after sync" false (Gpu_sim.Stream.pending st clock);
  (* total elapsed is max(CPU, GPU path), not the sum *)
  let kernel_only = dev.Gpu_sim.Memory.kernel_time in
  check_bool "overlap" true
    (clock.Gpu_sim.Stream.now < kernel_only +. 1e-4 +. 1e-5
     || clock.Gpu_sim.Stream.now >= Float.max kernel_only 1e-4)

let test_stream_join () =
  (* join couples the stream timelines without blocking the host *)
  let dev = Gpu_sim.Memory.create_device Gpu_sim.Spec.a6000 in
  let clock = Gpu_sim.Stream.create_clock () in
  let compute = Gpu_sim.Stream.create dev in
  let copy = Gpu_sim.Stream.create dev in
  let buf = Gpu_sim.Memory.alloc dev ~label:"x" ~size:4_000_000 in
  let host = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout 4_000_000 in
  Bigarray.Array1.fill host 1.;
  Gpu_sim.Stream.h2d copy clock buf host;
  let before = clock.Gpu_sim.Stream.now in
  Gpu_sim.Stream.join compute copy;
  check_bool "join does not advance host clock" true
    (clock.Gpu_sim.Stream.now = before);
  check_bool "compute inherits copy tail" true
    (compute.Gpu_sim.Stream.tail >= copy.Gpu_sim.Stream.tail);
  let k =
    Gpu_sim.Kernel.make ~name:"after_copy"
      ~cost:{ Gpu_sim.Kernel.flops_per_thread = 10.; dram_bytes_per_thread = 8. }
      (fun _ -> ())
  in
  Gpu_sim.Stream.kernel compute clock k ~nthreads:1000 ();
  (* the kernel's slot starts no earlier than the upload's completion *)
  check_bool "kernel ordered after upload" true
    (compute.Gpu_sim.Stream.tail > copy.Gpu_sim.Stream.tail)

let test_perf_report () =
  let dev = Gpu_sim.Memory.create_device Gpu_sim.Spec.a6000 in
  let k =
    Gpu_sim.Kernel.make ~name:"k"
      ~cost:{ Gpu_sim.Kernel.flops_per_thread = 124.; dram_bytes_per_thread = 18. }
      (fun _ -> ())
  in
  let n = 16_000_000 in
  let _ = Gpu_sim.Kernel.launch dev k ~nthreads:n () in
  let r = Gpu_sim.Perf.report dev ~avg_threads:n in
  (* the paper's profiling table: SM 86%, memory 11%, FLOP 49% of peak *)
  check_bool "SM util ~0.86" true (Float.abs (r.Gpu_sim.Perf.sm_utilization -. 0.86) < 0.02);
  check_bool "flop frac ~0.49" true
    (Float.abs (r.Gpu_sim.Perf.flop_frac_of_peak -. 0.49) < 0.03);
  check_bool "mem frac ~0.11" true
    (Float.abs (r.Gpu_sim.Perf.mem_throughput_frac -. 0.11) < 0.03);
  check_bool "report prints" true
    (String.length (Gpu_sim.Perf.to_string r) > 40)

let test_topology_paths () =
  let dpn = Gpu_sim.Topology.devices_per_node in
  check_int "8 devices per node" 8 dpn;
  check_int "node of 0" 0 (Gpu_sim.Topology.node_of 0);
  check_int "node of dpn" 1 (Gpu_sim.Topology.node_of dpn);
  let name s d =
    Gpu_sim.Topology.path_name (Gpu_sim.Topology.path ~src:s ~dst:d)
  in
  Alcotest.(check string) "same node" "nvlink" (name 0 (dpn - 1));
  Alcotest.(check string) "crossing the node boundary" "host" (name (dpn - 1) dpn);
  Alcotest.(check string) "next node internal" "nvlink" (name dpn (2 * dpn - 1));
  Alcotest.(check string) "self" "nvlink" (name 3 3)

let test_topology_d2d_time () =
  let s = Gpu_sim.Spec.a6000 in
  Tutil.check_close "zero bytes free (nvlink)" 0.
    (Gpu_sim.Topology.d2d_time s Gpu_sim.Topology.Nvlink ~bytes:0);
  Tutil.check_close "zero bytes free (staged)" 0.
    (Gpu_sim.Topology.d2d_time s Gpu_sim.Topology.Host_staged ~bytes:0);
  let b = 16 * 1024 * 1024 in
  let nv = Gpu_sim.Topology.d2d_time s Gpu_sim.Topology.Nvlink ~bytes:b in
  Tutil.check_close ~eps:1e-12 "nvlink = latency + bytes/bw"
    (s.Gpu_sim.Spec.nvlink_latency
     +. (float_of_int b /. s.Gpu_sim.Spec.nvlink_bandwidth))
    nv;
  let staged = Gpu_sim.Topology.d2d_time s Gpu_sim.Topology.Host_staged ~bytes:b in
  Tutil.check_close ~eps:1e-12 "staged = 2x pcie"
    (2. *. Gpu_sim.Spec.transfer_time s ~bytes:b)
    staged;
  check_bool "staging through the host costs more" true (staged > nv)

let test_memory_d2d_copies_runs () =
  (* the ghost push of the multi-device grid: element runs move between
     peer buffers, everything outside the runs stays put *)
  let src = Gpu_sim.Memory.create_device ~id:0 Gpu_sim.Spec.a6000 in
  let dst = Gpu_sim.Memory.create_device ~id:1 Gpu_sim.Spec.a6000 in
  let sb = Gpu_sim.Memory.alloc src ~label:"u" ~size:100 in
  let db = Gpu_sim.Memory.alloc dst ~label:"u" ~size:100 in
  let _ = Gpu_sim.Memory.h2d src sb (mk_host 100 7.) in
  let _ = Gpu_sim.Memory.h2d dst db (mk_host 100 0.) in
  let t =
    Gpu_sim.Memory.d2d ~src ~src_buf:sb ~dst ~dst_buf:db
      ~runs:[ (10, 5); (50, 2) ]
  in
  check_bool "positive modelled time" true (t > 0.);
  Tutil.check_close "first run copied" 7.
    (Bigarray.Array1.get db.Gpu_sim.Memory.device_data 14);
  Tutil.check_close "second run copied" 7.
    (Bigarray.Array1.get db.Gpu_sim.Memory.device_data 51);
  Tutil.check_close "outside runs untouched" 0.
    (Bigarray.Array1.get db.Gpu_sim.Memory.device_data 15);
  (* a peer copy occupies both ends *)
  check_int "src d2d bytes" 56 src.Gpu_sim.Memory.bytes_d2d;
  check_int "dst d2d bytes" 56 dst.Gpu_sim.Memory.bytes_d2d

let prop_kernel_time_monotone =
  QCheck.Test.make ~name:"kernel time monotone in flops and bytes" ~count:100
    QCheck.(pair (float_range 1e3 1e12) (float_range 1e3 1e12))
    (fun (flops, bytes) ->
      let s = Gpu_sim.Spec.a6000 in
      let t = Gpu_sim.Spec.kernel_time s ~threads:100000 ~flops ~dram_bytes:bytes in
      let t2 =
        Gpu_sim.Spec.kernel_time s ~threads:100000 ~flops:(2. *. flops)
          ~dram_bytes:(2. *. bytes)
      in
      t2 >= t && t > 0.)

let suite =
  ( "gpu-sim",
    [
      Alcotest.test_case "device specs" `Quick test_specs;
      Alcotest.test_case "transfer time" `Quick test_transfer_time;
      Alcotest.test_case "roofline kernel time" `Quick test_kernel_time_roofline;
      Alcotest.test_case "transfers copy data" `Quick test_memory_transfers_copy;
      Alcotest.test_case "memories are distinct" `Quick test_memory_divergence_is_real;
      Alcotest.test_case "size mismatch" `Quick test_transfer_size_mismatch;
      Alcotest.test_case "kernel executes with guard" `Quick test_kernel_executes_and_guards;
      Alcotest.test_case "stream overlap" `Quick test_stream_overlap;
      Alcotest.test_case "stream join ordering" `Quick test_stream_join;
      Alcotest.test_case "profiler matches paper table" `Quick test_perf_report;
      Alcotest.test_case "interconnect topology" `Quick test_topology_paths;
      Alcotest.test_case "d2d path costs" `Quick test_topology_d2d_time;
      Alcotest.test_case "d2d copies element runs" `Quick test_memory_d2d_copies_runs;
      QCheck_alcotest.to_alcotest prop_kernel_time_monotone;
    ] )
