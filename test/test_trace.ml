(* Observability tests: span nesting and track assignment in [Prt.Trace],
   histogram bucketing in [Prt.Metrics], well-formedness of the Chrome
   trace-event export (parsed back with a minimal JSON reader), the
   breakdown double-count regressions, and the guarantee that tracing and
   metrics do not perturb solver numerics. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* Every test that touches the global trace/metric state brackets itself
   with a full reset so suites stay order-independent. *)
let with_observability f =
  Prt.Trace.clear ();
  Prt.Trace.enable ();
  Prt.Metrics.reset_all ();
  Prt.Metrics.enable ();
  Fun.protect
    ~finally:(fun () ->
      Prt.Trace.disable ();
      Prt.Trace.clear ();
      Prt.Metrics.disable ();
      Prt.Metrics.reset_all ())
    f

(* ------------------------------------------------------------------ *)
(* spans and tracks                                                    *)

let test_span_nesting () =
  with_observability (fun () ->
      let r =
        Prt.Trace.span ~cat:"outer" Prt.Trace.main "parent" (fun () ->
            Prt.Trace.span ~cat:"inner" Prt.Trace.main "child" (fun () -> 7))
      in
      check_int "span returns its body's value" 7 r;
      let evs = Prt.Trace.events () in
      check_int "two events recorded" 2 (List.length evs);
      let find name = List.find (fun e -> e.Prt.Trace.ev_name = name) evs in
      let parent = find "parent" and child = find "child" in
      check_string "categories preserved" "outer" parent.Prt.Trace.ev_cat;
      check_int "same track" parent.Prt.Trace.ev_tid child.Prt.Trace.ev_tid;
      (* Chrome nesting is by time containment: the child's interval must
         sit inside the parent's *)
      check_bool "child starts after parent" true
        (child.Prt.Trace.ev_ts >= parent.Prt.Trace.ev_ts);
      check_bool "child ends before parent" true
        (child.Prt.Trace.ev_ts +. child.Prt.Trace.ev_dur
         <= parent.Prt.Trace.ev_ts +. parent.Prt.Trace.ev_dur +. 1e-9))

let test_span_records_on_exception () =
  with_observability (fun () ->
      (try
         Prt.Trace.span Prt.Trace.main "failing" (fun () -> failwith "boom")
       with Failure _ -> ());
      check_int "span closed despite exception" 1 (Prt.Trace.event_count ()))

let test_track_assignment () =
  with_observability (fun () ->
      Prt.Trace.instant (Prt.Trace.worker 0) "a";
      Prt.Trace.instant (Prt.Trace.rank 1) "b";
      Prt.Trace.span_at (Prt.Trace.stream 2) "k" ~ts_s:0. ~dur_s:1e-6;
      let evs = Prt.Trace.events () in
      let tid name =
        (List.find (fun e -> e.Prt.Trace.ev_name = name) evs).Prt.Trace.ev_tid
      in
      check_bool "worker and rank tracks differ" true (tid "a" <> tid "b");
      check_bool "rank and stream tracks differ" true (tid "b" <> tid "k");
      let pid name =
        (List.find (fun e -> e.Prt.Trace.ev_name = name) evs).Prt.Trace.ev_pid
      in
      check_int "worker events live on the host timeline" Prt.Trace.host_pid
        (pid "a");
      check_int "stream events live on the device timeline"
        Prt.Trace.device_pid (pid "k");
      check_int "three tracks registered with events" 3
        (List.length
           (List.sort_uniq compare
              (List.map (fun e -> e.Prt.Trace.ev_tid) evs))))

let test_disabled_is_silent () =
  Prt.Trace.clear ();
  Prt.Trace.disable ();
  let r = Prt.Trace.span Prt.Trace.main "ghost" (fun () -> 3) in
  Prt.Trace.instant Prt.Trace.main "ghost2";
  check_int "body still runs when disabled" 3 r;
  check_int "nothing recorded when disabled" 0 (Prt.Trace.event_count ())

(* ------------------------------------------------------------------ *)
(* metrics                                                             *)

let test_histogram_bucketing () =
  (* log2 buckets: bucket 0 takes v <= 1, bucket i takes 2^(i-1) < v <= 2^i *)
  check_int "0.5 -> bucket 0" 0 (Prt.Metrics.bucket_of 0.5);
  check_int "1.0 -> bucket 0" 0 (Prt.Metrics.bucket_of 1.0);
  check_int "1.5 -> bucket 1" 1 (Prt.Metrics.bucket_of 1.5);
  check_int "2.0 -> bucket 1" 1 (Prt.Metrics.bucket_of 2.0);
  check_int "2.1 -> bucket 2" 2 (Prt.Metrics.bucket_of 2.1);
  check_int "1024 -> bucket 10" 10 (Prt.Metrics.bucket_of 1024.);
  check_int "huge values clamp to the last bucket" 63
    (Prt.Metrics.bucket_of 1e300);
  with_observability (fun () ->
      let h = Prt.Metrics.histogram "test.hist" in
      List.iter (Prt.Metrics.observe h) [ 1.; 3.; 1000.; 1024. ];
      check_int "count" 4 (Prt.Metrics.hist_count h);
      Tutil.check_close "sum" 2028. (Prt.Metrics.hist_sum h);
      Tutil.check_close "max" 1024. (Prt.Metrics.hist_max h);
      Tutil.check_close "mean" 507. (Prt.Metrics.hist_mean h);
      check_int "bucket 0 holds v<=1" 1 (Prt.Metrics.hist_bucket h 0);
      check_int "bucket 2 holds 3" 1 (Prt.Metrics.hist_bucket h 2);
      check_int "bucket 10 holds 1000 and 1024" 2
        (Prt.Metrics.hist_bucket h 10))

let test_metrics_registry () =
  with_observability (fun () ->
      let a = Prt.Metrics.counter "test.reg" in
      let b = Prt.Metrics.counter "test.reg" in
      Prt.Metrics.add a 2;
      Prt.Metrics.incr b;
      check_int "same name -> same counter" 3 (Prt.Metrics.value a);
      check_bool "kind clash raises" true
        (try
           ignore (Prt.Metrics.histogram "test.reg");
           false
         with Invalid_argument _ -> true);
      let g = Prt.Metrics.gauge "test.gauge" in
      Prt.Metrics.set g 2.5;
      Tutil.check_close "gauge holds last value" 2.5
        (Prt.Metrics.gauge_value g));
  (* updates are no-ops while disabled *)
  Prt.Metrics.disable ();
  let c = Prt.Metrics.counter "test.reg" in
  Prt.Metrics.add c 100;
  check_int "disabled counter does not move" 0 (Prt.Metrics.value c);
  Prt.Metrics.reset_all ()

(* ------------------------------------------------------------------ *)
(* Chrome JSON well-formedness, via a minimal JSON reader              *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

(* A strict-enough recursive-descent parser for the subset of JSON the
   exporter emits (backslash escapes for quote, backslash and control
   characters, which is all [Trace.json_escape] produces). *)
let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = Alcotest.failf "JSON parse error at %d: %s" !pos msg in
  let peek () = if !pos < n then s.[!pos] else fail "eof" in
  let advance () = incr pos in
  let rec skip_ws () =
    if !pos < n then
      match s.[!pos] with
      | ' ' | '\t' | '\n' | '\r' ->
        advance ();
        skip_ws ()
      | _ -> ()
  in
  let expect c =
    skip_ws ();
    if peek () <> c then fail (Printf.sprintf "expected %c got %c" c (peek ()));
    advance ()
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'n' -> Buffer.add_char buf '\n'
         | 't' -> Buffer.add_char buf '\t'
         | 'r' -> Buffer.add_char buf '\r'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | c -> fail (Printf.sprintf "bad escape \\%c" c));
        advance ();
        go ()
      | c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let numchar c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && numchar s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let parse_lit lit v =
    if !pos + String.length lit <= n && String.sub s !pos (String.length lit) = lit
    then begin
      pos := !pos + String.length lit;
      v
    end
    else fail ("expected " ^ lit)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '"' -> Str (parse_string ())
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then begin
        advance ();
        Obj []
      end
      else Obj (parse_members [])
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then begin
        advance ();
        Arr []
      end
      else Arr (parse_elements [])
    | 't' -> parse_lit "true" (Bool true)
    | 'f' -> parse_lit "false" (Bool false)
    | 'n' -> parse_lit "null" Null
    | _ -> Num (parse_number ())
  and parse_members acc =
    skip_ws ();
    let k = parse_string () in
    expect ':';
    let v = parse_value () in
    skip_ws ();
    match peek () with
    | ',' ->
      advance ();
      parse_members ((k, v) :: acc)
    | '}' ->
      advance ();
      List.rev ((k, v) :: acc)
    | c -> fail (Printf.sprintf "expected , or } got %c" c)
  and parse_elements acc =
    let v = parse_value () in
    skip_ws ();
    match peek () with
    | ',' ->
      advance ();
      parse_elements (v :: acc)
    | ']' ->
      advance ();
      List.rev (v :: acc)
    | c -> fail (Printf.sprintf "expected , or ] got %c" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let obj_field name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let str_field name j =
  match obj_field name j with Some (Str s) -> Some s | _ -> None

let test_chrome_json_well_formed () =
  with_observability (fun () ->
      Prt.Trace.span Prt.Trace.main "a \"quoted\"\nname" (fun () ->
          Prt.Trace.instant ~args:[ "bytes", 42. ] (Prt.Trace.worker 0) "tick");
      Prt.Trace.span_at (Prt.Trace.stream 0) ~cat:"gpu" "kernel\\path"
        ~args:[ "threads", 128. ] ~ts_s:1e-3 ~dur_s:2e-3;
      let j = parse_json (Prt.Trace.chrome_json ()) in
      let events =
        match obj_field "traceEvents" j with
        | Some (Arr evs) -> evs
        | _ -> Alcotest.fail "traceEvents array missing"
      in
      check_string "displayTimeUnit present" "ms"
        (Option.value ~default:"?" (str_field "displayTimeUnit" j));
      let phase e = Option.value ~default:"?" (str_field "ph" e) in
      let metas = List.filter (fun e -> phase e = "M") events in
      let xs = List.filter (fun e -> phase e = "X") events in
      let is = List.filter (fun e -> phase e = "i") events in
      (* 2 process_name records + one thread_name and one thread_sort_index
         per registered track (the registry outlives [clear], so count it) *)
      check_int "metadata records"
        (2 + (2 * List.length (Prt.Trace.tracks ())))
        (List.length metas);
      check_int "complete events" 2 (List.length xs);
      check_int "instant events" 1 (List.length is);
      (* escaped characters survive a round trip *)
      check_bool "escaped span name round-trips" true
        (List.exists (fun e -> str_field "name" e = Some "a \"quoted\"\nname") xs);
      check_bool "backslash name round-trips" true
        (List.exists (fun e -> str_field "name" e = Some "kernel\\path") xs);
      (* every complete event carries the required Chrome keys *)
      List.iter
        (fun e ->
          List.iter
            (fun k ->
              check_bool (Printf.sprintf "X event has %s" k) true
                (obj_field k e <> None))
            [ "name"; "cat"; "ph"; "ts"; "dur"; "pid"; "tid" ])
        xs;
      (* args payloads survive *)
      check_bool "instant carries its args" true
        (List.exists
           (fun e ->
             match obj_field "args" e with
             | Some (Obj [ ("bytes", Num v) ]) -> v = 42.
             | _ -> false)
           is))

(* ------------------------------------------------------------------ *)
(* breakdown aggregation regressions                                   *)

let test_sum_distinct_dedupes_aliases () =
  let mk i = Prt.Breakdown.make ~intensity:i ~temperature:0. ~communication:0. () in
  let a = mk 1. in
  let b = mk 2. in
  (* [a] appears twice (shared-state aliasing, as when SPMD ranks share the
     base state); it must be counted once *)
  let s = Prt.Breakdown.sum_distinct [ a; b; a ] in
  Tutil.check_close "aliased record counted once" 3. (Prt.Breakdown.total s);
  let s2 = Prt.Breakdown.sum_distinct [ a; mk 1. ] in
  Tutil.check_close "equal-valued distinct records both counted" 2.
    (Prt.Breakdown.total s2)

let tiny =
  {
    Bte.Setup.small_hotspot with
    Bte.Setup.nx = 10;
    ny = 10;
    lx = 2e-6;
    ly = 2e-6;
    ndirs = 4;
    n_la_bands = 4;
    hot_radius = 0.6e-6;
    hot_center = 1e-6;
    nsteps = 6;
  }

let test_rebind_fresh_breakdown () =
  let built = Bte.Setup.build tiny in
  let base = Finch.Lower.build built.Bte.Setup.problem in
  let rebound =
    Finch.Lower.rebind base ~fields:base.Finch.Lower.fields
      ~u_new:base.Finch.Lower.u_new
  in
  check_bool "rebound state gets its own breakdown" true
    (rebound.Finch.Lower.breakdown != base.Finch.Lower.breakdown);
  Prt.Breakdown.record rebound.Finch.Lower.breakdown Prt.Breakdown.Intensity 1.;
  Tutil.check_close "recording on the rebound state leaves the base at zero"
    0.
    (Prt.Breakdown.total base.Finch.Lower.breakdown)

let test_breakdown_of_events () =
  with_observability (fun () ->
      let b = Prt.Breakdown.zero () in
      (* busy-wait past the clock granularity so the phase span has a
         strictly positive duration *)
      let spin () =
        let t0 = Unix.gettimeofday () in
        while Unix.gettimeofday () -. t0 < 2e-5 do
          ()
        done
      in
      Prt.Breakdown.timed ~track:Prt.Trace.main b Prt.Breakdown.Intensity spin;
      Prt.Breakdown.timed ~track:Prt.Trace.main b Prt.Breakdown.Communication
        spin;
      let rebuilt = Prt.Breakdown.of_events (Prt.Trace.events ()) in
      check_bool "phase spans rebuild a breakdown" true
        (rebuilt.Prt.Breakdown.intensity > 0.);
      (* span-derived and accumulator-derived totals agree to clock
         granularity (both come from the same gettimeofday pair) *)
      Tutil.check_close "rebuilt total matches accumulated total"
        (Prt.Breakdown.total b)
        (Prt.Breakdown.total rebuilt))

(* ------------------------------------------------------------------ *)
(* observability must not perturb numerics                             *)

let fields_bits_equal fa fb =
  let ra = Fvm.Field.raw fa and rb = Fvm.Field.raw fb in
  let na = Bigarray.Array1.dim ra in
  na = Bigarray.Array1.dim rb
  && (let ok = ref true in
      for i = 0 to na - 1 do
        if
          Int64.bits_of_float (Bigarray.Array1.get ra i)
          <> Int64.bits_of_float (Bigarray.Array1.get rb i)
        then ok := false
      done;
      !ok)

let solve_tiny_serial () =
  let built = Bte.Setup.build tiny in
  Finch.Problem.set_target built.Bte.Setup.problem
    (Finch.Config.Cpu Finch.Config.Serial);
  let o = Finch.Solve.solve ~band_index:"b" built.Bte.Setup.problem in
  Finch.Solve.field o "I", Finch.Solve.field o "T"

let test_bit_identity_under_observability () =
  Prt.Trace.disable ();
  Prt.Trace.clear ();
  Prt.Metrics.disable ();
  let i_off, t_off = solve_tiny_serial () in
  let i_on, t_on =
    with_observability (fun () -> solve_tiny_serial ())
  in
  check_bool "intensity bit-identical with tracing+metrics on" true
    (fields_bits_equal i_off i_on);
  check_bool "temperature bit-identical with tracing+metrics on" true
    (fields_bits_equal t_off t_on)

let suite =
  ( "trace-metrics",
    [
      Alcotest.test_case "span nesting" `Quick test_span_nesting;
      Alcotest.test_case "span closes on exception" `Quick
        test_span_records_on_exception;
      Alcotest.test_case "track assignment" `Quick test_track_assignment;
      Alcotest.test_case "disabled tracing is silent" `Quick
        test_disabled_is_silent;
      Alcotest.test_case "histogram bucketing" `Quick test_histogram_bucketing;
      Alcotest.test_case "metrics registry" `Quick test_metrics_registry;
      Alcotest.test_case "chrome json well-formed" `Quick
        test_chrome_json_well_formed;
      Alcotest.test_case "sum_distinct dedupes aliases" `Quick
        test_sum_distinct_dedupes_aliases;
      Alcotest.test_case "rebind gets fresh breakdown" `Quick
        test_rebind_fresh_breakdown;
      Alcotest.test_case "breakdown from phase spans" `Quick
        test_breakdown_of_events;
      Alcotest.test_case "bit identity under observability" `Quick
        test_bit_identity_under_observability;
    ] )
