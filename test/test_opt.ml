(* Optimizer-pipeline tests: bit-identity of the opt levels across the
   scenario x backend x overlap matrix, fusion-legality units (a crafted
   conflicting pair must NOT fuse), golden emission of optimized
   programs, zero analysis findings on optimized IR for every backend,
   and the analysis-verification (rejection) contract. *)

module E = Finch_symbolic.Expr
module Opt = Finch_opt.Opt

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* the tiny hotspot of the solver suite, plus a corner scenario with an
   ODD step count so the fused schedule's trailing half-pair runs *)
let tiny =
  {
    Bte.Setup.small_hotspot with
    Bte.Setup.nx = 10;
    ny = 10;
    lx = 2e-6;
    ly = 2e-6;
    ndirs = 4;
    n_la_bands = 4;
    hot_radius = 0.6e-6;
    hot_center = 1e-6;
    nsteps = 12;
  }

let tiny_corner =
  {
    Bte.Setup.small_corner with
    Bte.Setup.nx = 8;
    ny = 8;
    ndirs = 4;
    n_la_bands = 3;
    nsteps = 9;
  }

let build_at ?(corner = false) level target overlap =
  let built =
    if corner then Bte.Setup.build_corner tiny_corner
    else Bte.Setup.build tiny
  in
  let p = built.Bte.Setup.problem in
  Finch.Problem.set_target p target;
  Finch.Problem.set_overlap p overlap;
  Finch.Problem.set_opt_level p level;
  p

let solve_at ?corner level target overlap =
  Finch.Solve.solve ~band_index:"b" ~post_io:Bte.Setup.post_io
    (build_at ?corner level target overlap)

let field_diff o1 o2 name =
  Fvm.Field.max_abs_diff (Finch.Solve.field o1 name) (Finch.Solve.field o2 name)

let gpu1 = Finch.Config.Gpu { spec = Gpu_sim.Spec.a6000; devices = 1; ranks = 1 }
let gpu2 = Finch.Config.Gpu { spec = Gpu_sim.Spec.a6000; devices = 1; ranks = 2 }

(* backend x overlap matrix, mirroring bte_lint's default matrix *)
let matrix =
  [ "serial", Finch.Config.Cpu Finch.Config.Serial, false;
    "threads:3", Finch.Config.Cpu (Finch.Config.Threaded 3), false;
    "bands:2", Finch.Config.Cpu (Finch.Config.Band_parallel 2), false;
    "cells:2", Finch.Config.Cpu (Finch.Config.Cell_parallel 2), false;
    "cells:2+overlap", Finch.Config.Cpu (Finch.Config.Cell_parallel 2), true;
    "hybrid:2x2", Finch.Config.Cpu (Finch.Config.Hybrid (2, 2)), false;
    "gpu", gpu1, false;
    "gpu:2+overlap", gpu2, true ]

let test_opt_levels_bit_identical_hotspot () =
  List.iter
    (fun (label, target, overlap) ->
      let o0 = solve_at Finch.Config.O0 target overlap in
      List.iter
        (fun (lname, level) ->
          let o = solve_at level target overlap in
          let d = field_diff o0 o "I" in
          if d > 0. then
            Alcotest.failf "%s %s vs opt0: I diff %g" label lname d;
          let dt = field_diff o0 o "T" in
          if dt > 0. then
            Alcotest.failf "%s %s vs opt0: T diff %g" label lname dt)
        [ "opt1", Finch.Config.O1; "opt2", Finch.Config.O2 ])
    matrix

let test_opt_levels_bit_identical_corner_odd_steps () =
  (* odd nsteps: the threaded fused schedule runs npairs regions plus the
     classic-shaped tail region, and must still match opt0 exactly *)
  List.iter
    (fun (label, target, overlap) ->
      let o0 = solve_at ~corner:true Finch.Config.O0 target overlap in
      List.iter
        (fun (lname, level) ->
          let o = solve_at ~corner:true level target overlap in
          let d = field_diff o0 o "I" in
          if d > 0. then
            Alcotest.failf "corner %s %s vs opt0: I diff %g" label lname d;
          let dt = field_diff o0 o "T" in
          if dt > 0. then
            Alcotest.failf "corner %s %s vs opt0: T diff %g" label lname dt)
        [ "opt1", Finch.Config.O1; "opt2", Finch.Config.O2 ])
    [ "serial", Finch.Config.Cpu Finch.Config.Serial, false;
      "threads:3", Finch.Config.Cpu (Finch.Config.Threaded 3), false;
      "gpu", gpu1, false ]

(* ------------------------------------------------------------------ *)
(* Fusion legality units.                                              *)
(* ------------------------------------------------------------------ *)

let note = Finch.Ir.meta ()

let assign ?(dest_new = true) dest expr =
  Finch.Ir.Assign { dest; dest_new; expr; reduce = `Set; note }

let cell_loop body =
  Finch.Ir.Loop { range = Finch.Ir.Cells; body; parallel = true }

(* body writing [u] IN PLACE, and body reading [u] at the neighbour cell:
   fused into one iteration this is exactly the forgot-double-buffering
   race (A011), so the pair must NOT fuse *)
let writes_u_in_place = [ assign ~dest_new:false "u" (E.num 1.) ]
let reads_u_across_face = [ assign "v" (E.ref_ ~side:E.Cell2 "u" []) ]
let writes_u_buffered = [ assign "u" (E.num 1.) ]

let test_conflicting_pair_must_not_fuse () =
  check_bool "in-place write vs CELL2 read" false
    (Opt.can_fuse_cell_loops writes_u_in_place reads_u_across_face);
  check_bool "symmetric: CELL2 read vs in-place write" false
    (Opt.can_fuse_cell_loops reads_u_across_face writes_u_in_place);
  (* the tree rewrite must agree with the predicate *)
  let tree =
    Finch.Ir.Seq [ cell_loop writes_u_in_place; cell_loop reads_u_across_face ]
  in
  let fused, n = Opt.fuse_cell_loops tree in
  check_int "no fusions on the conflicting pair" 0 n;
  check_bool "tree unchanged" true (fused = tree)

let test_safe_pair_fuses () =
  (* the double-buffered variant of the same pair is safe: the CELL2 read
     sees the old buffer regardless of iteration interleaving *)
  check_bool "double-buffered write vs CELL2 read" true
    (Opt.can_fuse_cell_loops writes_u_buffered reads_u_across_face);
  let tree =
    Finch.Ir.Seq [ cell_loop writes_u_buffered; cell_loop reads_u_across_face ]
  in
  let fused, n = Opt.fuse_cell_loops tree in
  check_int "one fusion" 1 n;
  let loops =
    Finch.Ir.fold
      (fun acc n ->
        match n with Finch.Ir.Loop _ -> acc + 1 | _ -> acc)
      0 fused
  in
  check_int "one merged loop remains" 1 loops

let test_opaque_body_does_not_fuse () =
  (* a callback's footprint is invisible to the IR, so loops carrying one
     are never fusion candidates *)
  let opaque = [ Finch.Ir.Callback { which = `Post; note } ] in
  check_bool "opaque body" false
    (Opt.can_fuse_cell_loops writes_u_buffered opaque)

let test_dead_assign_elimination () =
  let tree =
    Finch.Ir.Seq
      [ cell_loop [ assign "scratch" (E.num 2.) ];
        cell_loop [ assign "kept" (E.num 3.) ] ]
  in
  let out, n = Opt.eliminate_dead_assigns ~live_out:[ "kept" ] tree in
  check_int "one dead assign removed" 1 n;
  let loops =
    Finch.Ir.fold
      (fun acc n ->
        match n with Finch.Ir.Loop _ -> acc + 1 | _ -> acc)
      0 out
  in
  check_int "emptied loop dropped with its assign" 1 loops;
  check_bool "live assign survives" true
    (List.mem "kept" (Finch.Ir.writes out))

let test_transfer_coalescing () =
  let tree =
    Finch.Ir.Seq
      [ Finch.Ir.H2d { vars = [ "a" ]; every_step = false };
        Finch.Ir.H2d { vars = [ "b" ]; every_step = false };
        Finch.Ir.H2d { vars = [ "c" ]; every_step = true } ]
  in
  let out, n = Opt.coalesce_transfers tree in
  check_int "one merge (cadences must match)" 1 n;
  match out with
  | Finch.Ir.Seq
      [ Finch.Ir.H2d { vars; every_step = false };
        Finch.Ir.H2d { vars = [ "c" ]; every_step = true } ] ->
    check_bool "merged variable set" true (List.sort compare vars = [ "a"; "b" ])
  | _ -> Alcotest.fail "unexpected coalesced shape"

(* ------------------------------------------------------------------ *)
(* Whole-pipeline properties on the BTE problem.                       *)
(* ------------------------------------------------------------------ *)

let test_golden_optimized_gpu_listing () =
  (* two independent roads to the batched device program — the O2
     builder, and the optimizer batching the O0 per-band program — must
     emit byte-identical CUDA *)
  let p = build_at Finch.Config.O2 gpu1 false in
  let res = Opt.optimize_problem ~post_io:Bte.Setup.post_io p in
  check_bool "kernel launch loops were batched" true
    (res.Opt.stats.Opt.kernels_batched >= 1);
  let plan = Finch.Dataflow.plan_for_problem ~post_io:Bte.Setup.post_io p in
  let built = Finch.Ir.build_gpu p ~transfers:(Finch.Dataflow.ir_transfers plan) in
  Alcotest.(check string)
    "optimized O0 program emits exactly the O2 builder's CUDA"
    (Finch.Emit_source.to_cuda built)
    (Finch.Emit_source.to_cuda res.Opt.ir)

let test_fused_step_listing () =
  (* the fused-pair schedule is visible in the optimized CPU listing *)
  let p =
    build_at Finch.Config.O1 (Finch.Config.Cpu (Finch.Config.Threaded 4)) false
  in
  let res = Opt.optimize_problem ~post_io:Bte.Setup.post_io p in
  check_int "one steps loop fused" 1 res.Opt.stats.Opt.steps_fused;
  let src = Finch.Emit_source.to_julia res.Opt.ir in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  check_bool "listing shows the swapped-role phase" true
    (contains src "buffer roles swapped")

let test_optimized_ir_clean_for_all_backends () =
  List.iter
    (fun (label, target, overlap) ->
      let p = build_at Finch.Config.O2 target overlap in
      let res = Opt.optimize_problem ~post_io:Bte.Setup.post_io p in
      let r =
        Finch_analysis.Driver.check_ir
          (Finch_analysis.Ctx.of_problem ~post_io:Bte.Setup.post_io p)
          res.Opt.ir
      in
      if r.Finch_analysis.Driver.errors + r.Finch_analysis.Driver.warnings > 0
      then
        Alcotest.failf "%s: optimized IR has %d findings" label
          (List.length r.Finch_analysis.Driver.findings))
    matrix

let test_unsafe_hoist_rejected_by_analyses () =
  (* the BTE temperature callback rewrites "Io"/"beta" every step, which
     the IR cannot see; hoisting their per-step uploads must be vetoed by
     the Movement pass (A020 stale-device / A023 plan mismatch), the
     pre-pass IR kept, and nothing hoisted *)
  let p = build_at Finch.Config.O2 gpu1 false in
  let res = Opt.optimize_problem ~post_io:Bte.Setup.post_io p in
  check_int "no uploads hoisted" 0 res.Opt.stats.Opt.h2d_hoisted;
  match
    List.find_opt
      (fun (r : Opt.rejection) -> r.Opt.rej_pass = "hoist_invariant_h2d")
      res.Opt.rejected
  with
  | None -> Alcotest.fail "hoist_invariant_h2d was not rejected"
  | Some r ->
    let code =
      Finch_analysis.Finding.id
        r.Opt.rej_finding.Finch_analysis.Finding.code
    in
    check_bool
      (Printf.sprintf "rejection carries a movement code (got %s)" code)
      true
      (code = "A020" || code = "A023")

let test_opt_level_parsing () =
  List.iter
    (fun (s, expect) ->
      match Finch.Config.opt_level_of_string s with
      | Ok l ->
        check_bool
          (Printf.sprintf "parse %s" s)
          true (l = expect)
      | Error e -> Alcotest.failf "parse %s: %s" s e)
    [ "0", Finch.Config.O0; "1", Finch.Config.O1; "2", Finch.Config.O2;
      "O1", Finch.Config.O1; "o2", Finch.Config.O2 ];
  check_bool "reject bad level" true
    (Result.is_error (Finch.Config.opt_level_of_string "3"))

let suite =
  ( "optimizer",
    [
      Alcotest.test_case "opt levels bit-identical on hotspot matrix" `Slow
        test_opt_levels_bit_identical_hotspot;
      Alcotest.test_case "opt levels bit-identical on corner (odd steps)" `Slow
        test_opt_levels_bit_identical_corner_odd_steps;
      Alcotest.test_case "conflicting pair must not fuse" `Quick
        test_conflicting_pair_must_not_fuse;
      Alcotest.test_case "safe pair fuses" `Quick test_safe_pair_fuses;
      Alcotest.test_case "opaque body does not fuse" `Quick
        test_opaque_body_does_not_fuse;
      Alcotest.test_case "dead assigns eliminated" `Quick
        test_dead_assign_elimination;
      Alcotest.test_case "transfers coalesced" `Quick test_transfer_coalescing;
      Alcotest.test_case "golden optimized gpu listing" `Quick
        test_golden_optimized_gpu_listing;
      Alcotest.test_case "fused step-pair listing" `Quick
        test_fused_step_listing;
      Alcotest.test_case "optimized IR clean for all backends" `Quick
        test_optimized_ir_clean_for_all_backends;
      Alcotest.test_case "unsafe hoist rejected by the analyses" `Quick
        test_unsafe_hoist_rejected_by_analyses;
      Alcotest.test_case "opt level parsing" `Quick test_opt_level_parsing;
    ] )
