(* Parallel-runtime tests: breakdown accounting, network cost models and
   the effects-based SPMD executor. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_breakdown_arith () =
  let a =
    Prt.Breakdown.make ~intensity:3. ~temperature:1. ~communication:0.5 ()
  in
  Tutil.check_close "total" 4.5 (Prt.Breakdown.total a);
  let b = Prt.Breakdown.scale 2. a in
  Tutil.check_close "scaled" 9. (Prt.Breakdown.total b);
  let c = Prt.Breakdown.add a b in
  Tutil.check_close "added" 13.5 (Prt.Breakdown.total c);
  let p = Prt.Breakdown.percentages a in
  Tutil.check_close "intensity pct" (100. *. 3. /. 4.5) p.Prt.Breakdown.pct_intensity;
  Tutil.check_close "pcts sum to 100"
    100.
    (p.Prt.Breakdown.pct_intensity +. p.pct_temperature +. p.pct_communication
     +. p.pct_boundary +. p.pct_other)

let test_breakdown_record_timed () =
  let b = Prt.Breakdown.zero () in
  Prt.Breakdown.record b Prt.Breakdown.Intensity 1.5;
  Prt.Breakdown.record b Prt.Breakdown.Communication 0.5;
  let r = Prt.Breakdown.timed b Prt.Breakdown.Temperature (fun () -> 42) in
  check_int "timed returns" 42 r;
  check_bool "temperature recorded" true (b.Prt.Breakdown.temperature >= 0.);
  Tutil.check_close "intensity" 1.5 b.Prt.Breakdown.intensity

let test_network_models () =
  let net = Prt.Cluster.default_network in
  check_bool "p2p has latency floor" true
    (Prt.Cluster.p2p net ~bytes:0 >= net.Prt.Cluster.alpha);
  Tutil.check_close "allreduce p=1 free" 0. (Prt.Cluster.allreduce net ~p:1 ~bytes:1000);
  let a2 = Prt.Cluster.allreduce net ~p:2 ~bytes:1000 in
  let a16 = Prt.Cluster.allreduce net ~p:16 ~bytes:1000 in
  check_bool "allreduce grows log p" true (a16 > a2 && a16 < 8. *. a2);
  let g = Prt.Cluster.allgather net ~p:4 ~bytes_per_rank:100 in
  check_bool "allgather positive" true (g > 0.);
  Tutil.check_close "halo exchange sums"
    (2. *. Prt.Cluster.p2p net ~bytes:50)
    (Prt.Cluster.halo_exchange net ~neighbour_bytes:[ 50; 50 ]);
  check_bool "broadcast grows with p" true
    (Prt.Cluster.broadcast net ~p:8 ~bytes:100 > Prt.Cluster.broadcast net ~p:2 ~bytes:100)

let test_spmd_barrier_order () =
  (* events around a barrier: all "before" precede all "after" *)
  let log = ref [] in
  Prt.Spmd.run ~nranks:3 (fun rank ->
      log := (`Before, rank) :: !log;
      Prt.Spmd.barrier ();
      log := (`After, rank) :: !log);
  let events = List.rev !log in
  let rec split acc = function
    | (`Before, _) :: rest -> split (acc + 1) rest
    | rest -> acc, rest
  in
  let nbefore, rest = split 0 events in
  check_int "all befores first" 3 nbefore;
  check_int "then all afters" 3 (List.length rest)

let test_spmd_allreduce () =
  let results = Array.make 4 [||] in
  Prt.Spmd.run ~nranks:4 (fun rank ->
      let a = [| float_of_int rank; 1.; float_of_int (rank * rank) |] in
      Prt.Spmd.allreduce_sum a;
      results.(rank) <- a);
  Array.iter
    (fun a ->
      Tutil.check_close "sum of ranks" 6. a.(0);
      Tutil.check_close "sum of ones" 4. a.(1);
      Tutil.check_close "sum of squares" 14. a.(2))
    results

let test_spmd_multiple_rounds () =
  let acc = Array.make 3 0. in
  Prt.Spmd.run ~nranks:3 (fun rank ->
      for _round = 1 to 5 do
        let a = [| 1. |] in
        Prt.Spmd.allreduce_sum a;
        acc.(rank) <- acc.(rank) +. a.(0);
        Prt.Spmd.barrier ()
      done);
  Array.iter (fun v -> Tutil.check_close "5 rounds of 3" 15. v) acc

let test_spmd_single_rank () =
  let hit = ref false in
  Prt.Spmd.run ~nranks:1 (fun _ ->
      let a = [| 2. |] in
      Prt.Spmd.allreduce_sum a;
      Tutil.check_close "identity reduce" 2. a.(0);
      Prt.Spmd.barrier ();
      hit := true);
  check_bool "ran" true !hit

let test_spmd_mismatch_detected () =
  let mismatch () =
    Prt.Spmd.run ~nranks:2 (fun rank ->
        if rank = 0 then Prt.Spmd.barrier ()
        (* rank 1 exits without reaching the barrier *))
  in
  match mismatch () with
  | exception Prt.Spmd.Spmd_error _ -> ()
  | () -> Alcotest.fail "expected Spmd_error"

let test_spmd_length_mismatch () =
  let bad () =
    Prt.Spmd.run ~nranks:2 (fun rank ->
        let a = Array.make (1 + rank) 0. in
        Prt.Spmd.allreduce_sum a)
  in
  match bad () with
  | exception Prt.Spmd.Spmd_error _ -> ()
  | () -> Alcotest.fail "expected length mismatch error"

let test_spmd_stress () =
  (* many ranks, many mixed collective rounds: a prefix-sum style program
     whose final values are checkable in closed form *)
  let nranks = 16 and rounds = 30 in
  let finals = Array.make nranks 0. in
  Prt.Spmd.run ~nranks (fun rank ->
      let acc = ref 0. in
      for round = 1 to rounds do
        let a = [| float_of_int (rank + round) |] in
        Prt.Spmd.allreduce_sum a;
        acc := !acc +. a.(0);
        Prt.Spmd.barrier ()
      done;
      finals.(rank) <- !acc);
  (* sum over rounds of sum over ranks of (rank + round) *)
  let expected =
    let n = float_of_int nranks and r = float_of_int rounds in
    (r *. (n *. (n -. 1.) /. 2.)) +. (n *. (r *. (r +. 1.) /. 2.))
  in
  Array.iter (fun v -> Tutil.check_close "prefix sums" expected v) finals

(* --- nonblocking point-to-point ------------------------------------- *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let expect_spmd_error name subs f =
  match f () with
  | exception Prt.Spmd.Spmd_error msg ->
    List.iter
      (fun sub ->
        if not (contains msg sub) then
          Alcotest.failf "%s: error %S should mention %S" name msg sub)
      subs
  | () -> Alcotest.failf "%s: expected Spmd_error" name

let test_p2p_send_before_recv () =
  (* rank 0 runs first and finishes its isend before rank 1 even starts *)
  let got = Array.make 3 0. in
  Prt.Spmd.run ~nranks:2 (fun rank ->
      if rank = 0 then begin
        let data = [| 1.; 2.; 3. |] in
        let r = Prt.Spmd.isend ~dst:1 ~tag:0 data in
        (* eager buffered semantics: reuse of the array is safe *)
        data.(0) <- 99.;
        Prt.Spmd.wait r
      end
      else begin
        let buf = Array.make 3 0. in
        Prt.Spmd.wait (Prt.Spmd.irecv ~src:0 ~tag:0 buf);
        Array.blit buf 0 got 0 3
      end);
  Tutil.check_close "payload snapshot" 1. got.(0);
  Tutil.check_close "payload" 3. got.(2)

let test_p2p_wait_before_arrival () =
  (* rank 0 posts the irecv and waits while rank 1 has not run yet: the
     wait must suspend, then complete when rank 1's isend matches *)
  let got = ref 0. and order = ref [] in
  Prt.Spmd.run ~nranks:2 (fun rank ->
      if rank = 0 then begin
        let buf = [| 0. |] in
        let r = Prt.Spmd.irecv ~src:1 ~tag:7 buf in
        check_bool "not done before sender ran" false (Prt.Spmd.request_done r);
        Prt.Spmd.wait r;
        order := `Recv_done :: !order;
        got := buf.(0)
      end
      else begin
        order := `Send_posted :: !order;
        Prt.Spmd.wait (Prt.Spmd.isend ~dst:0 ~tag:7 [| 42. |])
      end);
  Tutil.check_close "delivered" 42. !got;
  check_bool "recv completed after send was posted" true
    (List.rev !order = [ `Send_posted; `Recv_done ])

let test_p2p_tag_matching () =
  (* same rank pair, two tags posted in opposite orders: matching is by
     tag, not arrival order *)
  let a = [| 0. |] and b = [| 0. |] in
  Prt.Spmd.run ~nranks:2 (fun rank ->
      if rank = 0 then
        Prt.Spmd.waitall
          [ Prt.Spmd.isend ~dst:1 ~tag:1 [| 10. |];
            Prt.Spmd.isend ~dst:1 ~tag:2 [| 20. |] ]
      else
        Prt.Spmd.waitall
          [ Prt.Spmd.irecv ~src:0 ~tag:2 b; Prt.Spmd.irecv ~src:0 ~tag:1 a ]);
  Tutil.check_close "tag 1" 10. a.(0);
  Tutil.check_close "tag 2" 20. b.(0)

let test_p2p_fifo_same_tag () =
  (* two messages on the same (pair, tag) are matched in posting order *)
  let first = [| 0. |] and second = [| 0. |] in
  Prt.Spmd.run ~nranks:2 (fun rank ->
      if rank = 0 then
        Prt.Spmd.waitall
          [ Prt.Spmd.isend ~dst:1 ~tag:0 [| 1. |];
            Prt.Spmd.isend ~dst:1 ~tag:0 [| 2. |] ]
      else
        Prt.Spmd.waitall
          [ Prt.Spmd.irecv ~src:0 ~tag:0 first;
            Prt.Spmd.irecv ~src:0 ~tag:0 second ]);
  Tutil.check_close "first posted, first matched" 1. first.(0);
  Tutil.check_close "second" 2. second.(0)

let test_p2p_ring_rounds () =
  (* a shifting ring: every rank sends its value right and receives from
     the left, several rounds, no barriers at all *)
  let nranks = 8 and rounds = 10 in
  let finals = Array.make nranks 0. in
  Prt.Spmd.run ~nranks (fun rank ->
      let v = ref (float_of_int rank) in
      for _ = 1 to rounds do
        let buf = [| 0. |] in
        let s = Prt.Spmd.isend ~dst:((rank + 1) mod nranks) ~tag:0 [| !v |] in
        let r = Prt.Spmd.irecv ~src:((rank + nranks - 1) mod nranks) ~tag:0 buf in
        Prt.Spmd.waitall [ s; r ];
        v := buf.(0)
      done;
      finals.(rank) <- !v);
  (* after [rounds] shifts each rank holds (rank - rounds) mod nranks *)
  Array.iteri
    (fun rank v ->
      Tutil.check_close "ring shifted"
        (float_of_int ((rank - rounds + (nranks * rounds)) mod nranks))
        v)
    finals

let test_p2p_unmatched_irecv () =
  (* waited on: every other rank is finished, so this is a deadlock and
     the report names the stuck rank and tag *)
  expect_spmd_error "waited unmatched irecv"
    [ "deadlock"; "rank 1"; "irecv"; "tag 5" ]
    (fun () ->
      Prt.Spmd.run ~nranks:2 (fun rank ->
          if rank = 1 then
            Prt.Spmd.wait (Prt.Spmd.irecv ~src:0 ~tag:5 (Array.make 1 0.))));
  (* not waited on: detected as a leftover posting at program end *)
  expect_spmd_error "posted unmatched irecv" [ "unmatched"; "rank 1"; "tag 5" ]
    (fun () ->
      Prt.Spmd.run ~nranks:2 (fun rank ->
          if rank = 1 then
            ignore (Prt.Spmd.irecv ~src:0 ~tag:5 (Array.make 1 0.))))

let test_p2p_unmatched_isend () =
  (* a send nobody receives is reported at program end even without wait *)
  expect_spmd_error "unmatched isend" [ "unmatched"; "isend"; "tag 3" ]
    (fun () ->
      Prt.Spmd.run ~nranks:2 (fun rank ->
          if rank = 0 then ignore (Prt.Spmd.isend ~dst:1 ~tag:3 [| 1. |])))

let test_p2p_length_mismatch () =
  expect_spmd_error "p2p length" [ "length mismatch"; "rank 0"; "rank 1"; "tag 2" ]
    (fun () ->
      Prt.Spmd.run ~nranks:2 (fun rank ->
          if rank = 0 then ignore (Prt.Spmd.isend ~dst:1 ~tag:2 [| 1.; 2. |])
          else ignore (Prt.Spmd.irecv ~src:0 ~tag:2 (Array.make 5 0.))))

let test_p2p_bad_peer () =
  expect_spmd_error "peer out of range" [ "rank 0"; "rank 7" ] (fun () ->
      Prt.Spmd.run ~nranks:2 (fun rank ->
          if rank = 0 then ignore (Prt.Spmd.isend ~dst:7 ~tag:0 [| 1. |])))

let test_p2p_deadlock_with_collective () =
  (* rank 0 waits on a message rank 1 can never send: rank 1 is stuck at
     a barrier rank 0 will not reach.  The report names both states. *)
  expect_spmd_error "deadlock"
    [ "deadlock"; "rank 0"; "rank 1"; "barrier"; "tag 9" ]
    (fun () ->
      Prt.Spmd.run ~nranks:2 (fun rank ->
          if rank = 0 then
            Prt.Spmd.wait (Prt.Spmd.irecv ~src:1 ~tag:9 (Array.make 1 0.))
          else Prt.Spmd.barrier ()))

let test_collective_mismatch_names_ranks () =
  (* the pre-existing mismatch case must now name who is stuck where *)
  expect_spmd_error "collective mismatch"
    [ "rank 0 at barrier"; "1 of 2 ranks finished" ]
    (fun () ->
      Prt.Spmd.run ~nranks:2 (fun rank ->
          if rank = 0 then Prt.Spmd.barrier ()))

let test_allreduce_mismatch_names_ranks () =
  expect_spmd_error "allreduce length" [ "allreduce length mismatch"; "rank 1" ]
    (fun () ->
      Prt.Spmd.run ~nranks:2 (fun rank ->
          Prt.Spmd.allreduce_sum (Array.make (1 + rank) 0.)))

let test_p2p_metrics () =
  Prt.Metrics.reset_all ();
  Prt.Metrics.enable ();
  Prt.Spmd.run ~nranks:2 (fun rank ->
      if rank = 0 then Prt.Spmd.wait (Prt.Spmd.isend ~dst:1 ~tag:0 (Array.make 4 1.))
      else Prt.Spmd.wait (Prt.Spmd.irecv ~src:0 ~tag:0 (Array.make 4 0.)));
  Prt.Metrics.disable ();
  check_int "one message" 1 (Prt.Metrics.value (Prt.Metrics.counter "spmd.p2p_msgs"));
  check_int "payload bytes" 32
    (Prt.Metrics.value (Prt.Metrics.counter "spmd.p2p_bytes"));
  check_bool "cluster p2p time charged" true
    (Prt.Metrics.value (Prt.Metrics.counter "cluster.p2p_time_ns") > 0);
  Prt.Metrics.reset_all ()

let test_vranks () =
  let t = Prt.Vranks.create ~nranks:3 ~init:(fun r -> Array.make 2 (float_of_int r)) in
  Prt.Vranks.superstep t
    ~compute:(fun _ st -> st.(1) <- st.(0) *. 2.)
    ~exchange:(fun _ -> ());
  Tutil.check_close "rank 2 compute" 4. (Prt.Vranks.state t 2).(1);
  Prt.Vranks.allreduce_sum t ~get:(fun st -> st) ~set:(fun st a -> Array.blit a 0 st 0 2) ~len:2;
  Tutil.check_close "reduced" 3. (Prt.Vranks.state t 0).(0)

(* --- Commsched: static schedule simulation ----------------------- *)

let send peer tag len label = Prt.Commsched.Send { peer; tag; len; label }
let recv peer tag len label = Prt.Commsched.Recv { peer; tag; len; label }
let wait = Prt.Commsched.Wait_all

(* compact shape of a problem list, for multiset assertions *)
let shapes ps =
  List.map
    (function
      | Prt.Commsched.Unmatched_send _ -> "unmatched-send"
      | Prt.Commsched.Unmatched_recv _ -> "unmatched-recv"
      | Prt.Commsched.Deadlock _ -> "deadlock"
      | Prt.Commsched.Tag_collision _ -> "tag-collision"
      | Prt.Commsched.Size_mismatch _ -> "size-mismatch")
    ps

let check_shapes name expect sched =
  Alcotest.(check (list string)) name expect
    (shapes (Prt.Commsched.simulate sched))

let test_commsched_clean () =
  (* symmetric two-rank halo round: everything matches, no problems *)
  check_shapes "clean exchange" []
    [| [ send 1 0 2 "u"; recv 1 0 2 "u"; wait ];
       [ send 0 0 2 "u"; recv 0 0 2 "u"; wait ] |];
  check_shapes "empty schedule" [] [| []; [] |]

let test_commsched_unmatched () =
  (* rank 1 never posts the receive for rank 0's send *)
  check_shapes "dropped receive" [ "unmatched-send" ]
    [| [ send 1 0 2 "u"; wait ]; [ wait ] |];
  (* rank 0 never posts the send rank 1 receives; rank 1's wait cannot
     cycle (rank 0 finishes), so this is unmatched, not deadlock *)
  check_shapes "dropped send" [ "unmatched-recv" ]
    [| [ wait ]; [ recv 0 0 2 "u"; wait ] |]

let test_commsched_deadlock () =
  (* both ranks wait before sending: a waits-for cycle, reported once
     and subsuming the per-message unmatched reports *)
  check_shapes "recv-before-send cycle" [ "deadlock" ]
    [| [ recv 1 0 2 "u"; wait; send 1 0 2 "u" ];
       [ recv 0 0 2 "u"; wait; send 0 0 2 "u" ] |];
  match Prt.Commsched.simulate
          [| [ recv 1 0 1 "u"; wait; send 1 0 1 "u" ];
             [ recv 0 0 1 "u"; wait; send 0 0 1 "u" ] |]
  with
  | [ Prt.Commsched.Deadlock { ranks } ] ->
    Alcotest.(check (list int)) "cycle members" [ 0; 1 ] ranks
  | ps -> Alcotest.failf "expected one deadlock, got %d problems" (List.length ps)

let test_commsched_tag_collision () =
  (* two in-flight sends with different lengths on one channel: FIFO
     matching is order-dependent (and the lengths cross, so the two
     deliveries also mismatch) *)
  check_shapes "busy channel"
    [ "tag-collision"; "size-mismatch"; "size-mismatch" ]
    [| [ send 1 0 1 "a"; send 1 0 2 "b" ];
       [ recv 0 0 2 "b"; recv 0 0 1 "a"; wait ] |]

let test_commsched_size_mismatch () =
  check_shapes "framing disagreement" [ "size-mismatch" ]
    [| [ send 1 0 3 "u"; recv 1 0 2 "u"; wait ];
       [ send 0 0 2 "u"; recv 0 0 2 "u"; wait ] |]

let test_commsched_to_string () =
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  let covers p sub =
    let s = Prt.Commsched.problem_to_string p in
    check_bool (Printf.sprintf "%S mentions %S" s sub) true (contains s sub)
  in
  covers (Prt.Commsched.Unmatched_send { src = 0; dst = 1; tag = 0; label = "u" })
    "never received";
  covers (Prt.Commsched.Deadlock { ranks = [ 0; 1 ] }) "cycle"

let suite =
  ( "prt",
    [
      Alcotest.test_case "breakdown arithmetic" `Quick test_breakdown_arith;
      Alcotest.test_case "breakdown record/timed" `Quick test_breakdown_record_timed;
      Alcotest.test_case "network cost models" `Quick test_network_models;
      Alcotest.test_case "spmd barrier ordering" `Quick test_spmd_barrier_order;
      Alcotest.test_case "spmd allreduce" `Quick test_spmd_allreduce;
      Alcotest.test_case "spmd multiple rounds" `Quick test_spmd_multiple_rounds;
      Alcotest.test_case "spmd single rank" `Quick test_spmd_single_rank;
      Alcotest.test_case "spmd mismatch detected" `Quick test_spmd_mismatch_detected;
      Alcotest.test_case "spmd length mismatch" `Quick test_spmd_length_mismatch;
      Alcotest.test_case "spmd stress (16 ranks, 30 rounds)" `Quick test_spmd_stress;
      Alcotest.test_case "p2p send before recv" `Quick test_p2p_send_before_recv;
      Alcotest.test_case "p2p wait before arrival" `Quick test_p2p_wait_before_arrival;
      Alcotest.test_case "p2p tag matching" `Quick test_p2p_tag_matching;
      Alcotest.test_case "p2p FIFO on same tag" `Quick test_p2p_fifo_same_tag;
      Alcotest.test_case "p2p ring (8 ranks, 10 rounds)" `Quick test_p2p_ring_rounds;
      Alcotest.test_case "p2p unmatched irecv" `Quick test_p2p_unmatched_irecv;
      Alcotest.test_case "p2p unmatched isend" `Quick test_p2p_unmatched_isend;
      Alcotest.test_case "p2p length mismatch" `Quick test_p2p_length_mismatch;
      Alcotest.test_case "p2p peer out of range" `Quick test_p2p_bad_peer;
      Alcotest.test_case "p2p deadlock vs collective" `Quick
        test_p2p_deadlock_with_collective;
      Alcotest.test_case "collective mismatch names ranks" `Quick
        test_collective_mismatch_names_ranks;
      Alcotest.test_case "allreduce mismatch names ranks" `Quick
        test_allreduce_mismatch_names_ranks;
      Alcotest.test_case "p2p metrics accounted" `Quick test_p2p_metrics;
      Alcotest.test_case "vranks superstep" `Quick test_vranks;
      Alcotest.test_case "commsched clean" `Quick test_commsched_clean;
      Alcotest.test_case "commsched unmatched halves" `Quick
        test_commsched_unmatched;
      Alcotest.test_case "commsched deadlock cycle" `Quick
        test_commsched_deadlock;
      Alcotest.test_case "commsched tag collision" `Quick
        test_commsched_tag_collision;
      Alcotest.test_case "commsched size mismatch" `Quick
        test_commsched_size_mismatch;
      Alcotest.test_case "commsched problem strings" `Quick
        test_commsched_to_string;
    ] )
