(* End-to-end solver tests on generic (non-BTE) problems: numerical
   correctness of the generated code and exact agreement across every
   execution target (serial, band-parallel, cell-parallel, threaded, GPU),
   which the double-buffered explicit scheme guarantees. *)

let check_bool = Alcotest.(check bool)

(* A 2-D advection problem with an indexed variable u[d] carrying two
   independent components advected in different directions — a miniature of
   the BTE's direction coupling, with symmetric-enough structure to test
   band partitioning on the index d. *)
let make_advection ?(nx = 12) ?(ny = 12) ?(nsteps = 30) () =
  let p = Finch.Problem.init "adv" in
  Finch.Problem.domain p 2;
  let mesh = Fvm.Mesh_gen.rectangle ~nx ~ny ~lx:1.0 ~ly:1.0 () in
  Finch.Problem.set_mesh p mesh;
  Finch.Problem.set_steps p ~dt:2e-3 ~nsteps;
  let d = Finch.Problem.index p ~name:"d" ~range:(1, 4) in
  let u = Finch.Problem.variable p ~name:"u" ~indices:[ d ] () in
  let _ =
    Finch.Problem.coefficient p ~name:"cx" ~index:d
      (Finch.Entity.Arr [| 1.0; -1.0; 0.5; 0.0 |])
  in
  let _ =
    Finch.Problem.coefficient p ~name:"cy" ~index:d
      (Finch.Entity.Arr [| 0.0; 0.5; -1.0; 1.0 |])
  in
  let _ = Finch.Problem.coefficient p ~name:"k" (Finch.Entity.Const 0.3) in
  Finch.Problem.initial p u
    (Finch.Problem.Init_fn
       (fun pos comp ->
         let x = pos.(0) -. 0.5 and y = pos.(1) -. 0.5 in
         exp (-20. *. ((x *. x) +. (y *. y))) *. (1. +. (0.1 *. float_of_int comp))));
  (* all four sides: upwind outflow via ghost = interior *)
  List.iter
    (fun r -> Finch.Problem.boundary p u r Finch.Config.Dirichlet "u[d]")
    [ 1; 2; 3; 4 ];
  let _ =
    Finch.Problem.conservation_form p u
      "-k*u[d] - surface(upwind([cx[d];cy[d]], u[d]))"
  in
  p, mesh, u

let run_with target p =
  Finch.Problem.set_target p target;
  Finch.Solve.solve p

let fresh target =
  let p, mesh, _ = make_advection () in
  let o = run_with target p in
  o, mesh

let test_serial_physics () =
  let o, mesh = fresh (Finch.Config.Cpu Finch.Config.Serial) in
  let u = o.Finch.Solve.u in
  (* decay + outflow: total mass decreases, stays positive *)
  let mass = Fvm.Field.integral u mesh 0 in
  check_bool "mass positive" true (mass > 0.);
  check_bool "mass decayed" true (mass < 0.049 (* initial integral approx 0.157/pi... just bound loosely *) *. 10.);
  (* no negative under/overshoots beyond tolerance: first-order upwind with
     CFL-satisfying dt is monotone for the pure advection part; decay only
     shrinks values *)
  Fvm.Field.iter u (fun _ _ v ->
      if v < -1e-12 || v > 1.2 then Alcotest.failf "out of bounds value %g" v)

let test_component_independence () =
  (* component 3 has velocity (0,1) and does not mix with others: running
     with a different initial scale on one component must scale only it *)
  let p1, _, u1 = make_advection () in
  let p2, _, u2 = make_advection () in
  ignore u1; ignore u2;
  (* double component 0 of p2's initial condition *)
  p2.Finch.Problem.initials <-
    List.map
      (fun (name, spec) ->
        match spec with
        | Finch.Problem.Init_fn f ->
          ( name,
            Finch.Problem.Init_fn
              (fun pos comp -> if comp = 0 then 2. *. f pos comp else f pos comp) )
        | s -> name, s)
      p2.Finch.Problem.initials;
  let o1 = run_with (Finch.Config.Cpu Finch.Config.Serial) p1 in
  let o2 = run_with (Finch.Config.Cpu Finch.Config.Serial) p2 in
  let f1 = o1.Finch.Solve.u and f2 = o2.Finch.Solve.u in
  for cell = 0 to Fvm.Field.ncells f1 - 1 do
    Tutil.check_close ~eps:1e-12 "comp0 doubled"
      (2. *. Fvm.Field.get f1 cell 0)
      (Fvm.Field.get f2 cell 0);
    Tutil.check_close ~eps:1e-12 "comp2 unchanged"
      (Fvm.Field.get f1 cell 2)
      (Fvm.Field.get f2 cell 2)
  done

let targets_equal name t1 t2 =
  let o1, _ = fresh t1 and o2, _ = fresh t2 in
  let diff = Fvm.Field.max_abs_diff o1.Finch.Solve.u o2.Finch.Solve.u in
  if diff > 1e-13 then Alcotest.failf "%s: max abs diff %g" name diff

let test_band_parallel_equals_serial () =
  List.iter
    (fun n ->
      targets_equal
        (Printf.sprintf "bands %d" n)
        (Finch.Config.Cpu Finch.Config.Serial)
        (Finch.Config.Cpu (Finch.Config.Band_parallel n)))
    [ 2; 3; 4 ]

let test_cell_parallel_equals_serial () =
  List.iter
    (fun n ->
      targets_equal
        (Printf.sprintf "cells %d" n)
        (Finch.Config.Cpu Finch.Config.Serial)
        (Finch.Config.Cpu (Finch.Config.Cell_parallel n)))
    [ 2; 3; 4; 7 ]

let test_overlap_equals_sync () =
  (* the overlapped halo exchange (nonblocking isend/irecv around the
     interior sweep) must be bit-identical — not just close — to the
     barriered blit path, for any rank count *)
  List.iter
    (fun n ->
      let p1, _, _ = make_advection () in
      let o1 = run_with (Finch.Config.Cpu (Finch.Config.Cell_parallel n)) p1 in
      let p2, _, _ = make_advection () in
      Finch.Problem.set_overlap p2 true;
      let o2 = run_with (Finch.Config.Cpu (Finch.Config.Cell_parallel n)) p2 in
      let diff = Fvm.Field.max_abs_diff o1.Finch.Solve.u o2.Finch.Solve.u in
      if diff > 0. then Alcotest.failf "overlap cells %d: diff %g" n diff)
    [ 2; 3; 4; 7 ]

let test_overlap_equals_serial () =
  (* and transitively identical to the serial reference *)
  let p1, _, _ = make_advection () in
  let o1 = run_with (Finch.Config.Cpu Finch.Config.Serial) p1 in
  let p2, _, _ = make_advection () in
  Finch.Problem.set_overlap p2 true;
  let o2 = run_with (Finch.Config.Cpu (Finch.Config.Cell_parallel 4)) p2 in
  let diff = Fvm.Field.max_abs_diff o1.Finch.Solve.u o2.Finch.Solve.u in
  if diff > 1e-13 then Alcotest.failf "overlap vs serial: diff %g" diff

let test_gpu_equals_serial () =
  targets_equal "gpu"
    (Finch.Config.Cpu Finch.Config.Serial)
    (Finch.Config.Gpu { spec = Gpu_sim.Spec.a6000; devices = 1; ranks = 1 })

let test_gpu_overlap_equals_sync () =
  (* double-buffered second-stream transfers change only the modelled
     timeline, never the fields *)
  let gpu = Finch.Config.Gpu { spec = Gpu_sim.Spec.a6000; devices = 1; ranks = 1 } in
  let p1, _, _ = make_advection () in
  let o1 = run_with gpu p1 in
  let p2, _, _ = make_advection () in
  Finch.Problem.set_overlap p2 true;
  let o2 = run_with gpu p2 in
  let diff = Fvm.Field.max_abs_diff o1.Finch.Solve.u o2.Finch.Solve.u in
  if diff > 0. then Alcotest.failf "gpu overlap: diff %g" diff

let test_threaded_equals_serial () =
  let p1, _, _ = make_advection () in
  let o1 = run_with (Finch.Config.Cpu Finch.Config.Serial) p1 in
  let p2, _, _ = make_advection () in
  let r2 = Finch.Target_cpu.run_threaded p2 ~ndomains:3 in
  let u2 = (Finch.Target_cpu.primary r2).Finch.Lower.u in
  let diff = Fvm.Field.max_abs_diff o1.Finch.Solve.u u2 in
  if diff > 1e-13 then Alcotest.failf "threaded: diff %g" diff

let test_pool_threaded_equals_serial () =
  (* the persistent-pool executor through the Solve dispatch: the
     double-buffered scheme makes agreement exact, not approximate *)
  List.iter
    (fun n ->
      let o1, _ = fresh (Finch.Config.Cpu Finch.Config.Serial) in
      let o2, _ = fresh (Finch.Config.Cpu (Finch.Config.Threaded n)) in
      let diff = Fvm.Field.max_abs_diff o1.Finch.Solve.u o2.Finch.Solve.u in
      if diff > 0. then Alcotest.failf "pool threads %d: diff %g" n diff)
    [ 1; 2; 3; 4 ]

let test_hybrid_equals_serial () =
  (* band-parallel ranks each driving a domain pool (the paper's
     MPI+threads hybrid), against plain serial *)
  List.iter
    (fun (nranks, ndomains) ->
      let o1, _ = fresh (Finch.Config.Cpu Finch.Config.Serial) in
      let o2, _ = fresh (Finch.Config.Cpu (Finch.Config.Hybrid (nranks, ndomains))) in
      let diff = Fvm.Field.max_abs_diff o1.Finch.Solve.u o2.Finch.Solve.u in
      if diff > 0. then
        Alcotest.failf "hybrid %dx%d: diff %g" nranks ndomains diff)
    [ 2, 2; 4, 1; 2, 3 ]

let test_pool_respawn_executors_agree () =
  (* the retained spawn-per-step executor and the pool executor are the
     same algorithm on different runtimes *)
  let p1, _, _ = make_advection () in
  let r1 = Finch.Target_cpu.run_threaded p1 ~ndomains:3 in
  let p2, _, _ = make_advection () in
  let r2 = Finch.Target_cpu.run_threaded_respawn p2 ~ndomains:3 in
  let u1 = (Finch.Target_cpu.primary r1).Finch.Lower.u in
  let u2 = (Finch.Target_cpu.primary r2).Finch.Lower.u in
  let diff = Fvm.Field.max_abs_diff u1 u2 in
  if diff > 0. then Alcotest.failf "pool vs respawn: diff %g" diff

let test_tape_mode_equals_closure_mode () =
  (* whole-solve agreement of the two evaluators, on serial and pooled
     executors; Tape is the default, so force Closure on the reference *)
  List.iter
    (fun target ->
      let p1, _, _ = make_advection () in
      Finch.Problem.set_eval_mode p1 Finch.Config.Closure;
      let o1 = run_with target p1 in
      let p2, _, _ = make_advection () in
      Finch.Problem.set_eval_mode p2 Finch.Config.Tape;
      let o2 = run_with target p2 in
      let diff = Fvm.Field.max_abs_diff o1.Finch.Solve.u o2.Finch.Solve.u in
      if diff > 0. then
        Alcotest.failf "tape vs closure (%s): diff %g"
          (Finch.Config.target_name target) diff)
    [ Finch.Config.Cpu Finch.Config.Serial;
      Finch.Config.Cpu (Finch.Config.Threaded 3) ]

let test_loop_order_invariance () =
  (* permuting assembly loops must not change results *)
  let p1, _, _ = make_advection () in
  let o1 = run_with (Finch.Config.Cpu Finch.Config.Serial) p1 in
  let p2, _, _ = make_advection () in
  Finch.Problem.assembly_loops p2 [ "d"; "elements" ];
  let o2 = run_with (Finch.Config.Cpu Finch.Config.Serial) p2 in
  let diff = Fvm.Field.max_abs_diff o1.Finch.Solve.u o2.Finch.Solve.u in
  if diff > 0. then Alcotest.failf "loop order changed results: %g" diff

let test_assembly_loops_validation () =
  let p, _, _ = make_advection () in
  Finch.Problem.assembly_loops p [ "d" ];
  (match run_with (Finch.Config.Cpu Finch.Config.Serial) p with
   | exception Finch.Lower.Lower_error _ -> ()
   | _ -> Alcotest.fail "missing elements loop should fail");
  let p2, _, _ = make_advection () in
  Finch.Problem.assembly_loops p2 [ "elements"; "nope" ];
  match run_with (Finch.Config.Cpu Finch.Config.Serial) p2 with
  | exception Finch.Lower.Lower_error _ -> ()
  | _ -> Alcotest.fail "unknown index should fail"

let test_dirichlet_inflow () =
  (* 1-component inflow problem: constant inflow value propagates and the
     steady state is bounded by the boundary value *)
  let p = Finch.Problem.init "inflow" in
  Finch.Problem.domain p 2;
  let mesh = Fvm.Mesh_gen.rectangle ~nx:10 ~ny:3 ~lx:1.0 ~ly:0.3 () in
  Finch.Problem.set_mesh p mesh;
  Finch.Problem.set_steps p ~dt:2e-3 ~nsteps:2000;
  let u = Finch.Problem.variable p ~name:"u" () in
  let _ = Finch.Problem.coefficient p ~name:"cx" (Finch.Entity.Const 1.0) in
  let _ = Finch.Problem.coefficient p ~name:"cy" (Finch.Entity.Const 0.0) in
  Finch.Problem.initial p u (Finch.Problem.Init_const 0.);
  Finch.Problem.boundary p u 4 Finch.Config.Dirichlet "2.5"; (* left inflow *)
  Finch.Problem.boundary p u 2 Finch.Config.Dirichlet "u";   (* right outflow *)
  (* top/bottom tangential: flux contribution is zero anyway (cy = 0) *)
  Finch.Problem.boundary p u 1 Finch.Config.Dirichlet "u";
  Finch.Problem.boundary p u 3 Finch.Config.Dirichlet "u";
  let _ = Finch.Problem.conservation_form p u "-surface(upwind([cx;cy], u))" in
  let o = Finch.Solve.solve p in
  (* steady state: u = 2.5 everywhere *)
  Fvm.Field.iter o.Finch.Solve.u (fun _ _ v ->
      Tutil.check_close ~eps:1e-5 "steady inflow value" 2.5 v)

let test_flux_bc_expression () =
  (* prescribing zero flux on all boundaries conserves mass exactly
     (pure advection, no decay) *)
  let p = Finch.Problem.init "closed" in
  Finch.Problem.domain p 2;
  let mesh = Fvm.Mesh_gen.rectangle ~nx:8 ~ny:8 ~lx:1.0 ~ly:1.0 () in
  Finch.Problem.set_mesh p mesh;
  Finch.Problem.set_steps p ~dt:2e-3 ~nsteps:50;
  let u = Finch.Problem.variable p ~name:"u" () in
  let _ = Finch.Problem.coefficient p ~name:"cx" (Finch.Entity.Const 0.7) in
  let _ = Finch.Problem.coefficient p ~name:"cy" (Finch.Entity.Const 0.3) in
  Finch.Problem.initial p u
    (Finch.Problem.Init_fn
       (fun pos _ ->
         exp (-30. *. (((pos.(0) -. 0.5) ** 2.) +. ((pos.(1) -. 0.5) ** 2.)))));
  List.iter
    (fun r -> Finch.Problem.boundary p u r Finch.Config.Flux "0")
    [ 1; 2; 3; 4 ];
  let _ = Finch.Problem.conservation_form p u "-surface(upwind([cx;cy], u))" in
  let mass0 =
    (* integrate the initial condition *)
    let st = Finch.Lower.build p in
    Fvm.Field.integral st.Finch.Lower.u mesh 0
  in
  let o = Finch.Solve.solve p in
  let mass1 = Fvm.Field.integral o.Finch.Solve.u mesh 0 in
  Tutil.check_close ~eps:1e-12 "mass conserved in closed box" mass0 mass1

let test_post_step_callback_runs () =
  let p, _, _ = make_advection ~nsteps:5 () in
  let count = ref 0 in
  Finch.Problem.post_step_function p (fun ctx ->
      incr count;
      Alcotest.(check int) "nranks" 1 ctx.Finch.Problem.st_nranks);
  let _ = run_with (Finch.Config.Cpu Finch.Config.Serial) p in
  Alcotest.(check int) "post-step called each step" 5 !count

let test_rcb_band_gather () =
  (* gather_unknown reconstructs the full field from band-partitioned
     states without gaps *)
  let p, _, _ = make_advection ~nsteps:3 () in
  Finch.Problem.set_target p (Finch.Config.Cpu (Finch.Config.Band_parallel 3));
  let o = Finch.Solve.solve p in
  Fvm.Field.iter o.Finch.Solve.u (fun _ _ v ->
      check_bool "no NaN after gather" true (not (Float.is_nan v)))

(* pure decay du/dt = -k u: measure convergence order of the steppers *)
let decay_error stepper ~dt ~nsteps =
  let p = Finch.Problem.init "decay" in
  Finch.Problem.domain p 2;
  let mesh = Fvm.Mesh_gen.rectangle ~nx:2 ~ny:2 ~lx:1.0 ~ly:1.0 () in
  Finch.Problem.set_mesh p mesh;
  Finch.Problem.set_steps p ~dt ~nsteps;
  Finch.Problem.time_stepper p stepper;
  let u = Finch.Problem.variable p ~name:"u" () in
  let _ = Finch.Problem.coefficient p ~name:"k" (Finch.Entity.Const 1.0) in
  Finch.Problem.initial p u (Finch.Problem.Init_const 1.0);
  let _ = Finch.Problem.conservation_form p u "-k*u" in
  let o = Finch.Solve.solve p in
  let exact = exp (-.(dt *. float_of_int nsteps)) in
  Float.abs (Fvm.Field.get o.Finch.Solve.u 0 0 -. exact)

let test_rk_convergence_order () =
  (* halving dt divides the error by ~2^order *)
  let order stepper =
    let e1 = decay_error stepper ~dt:0.1 ~nsteps:10 in
    let e2 = decay_error stepper ~dt:0.05 ~nsteps:20 in
    log (e1 /. e2) /. log 2.
  in
  let o_euler = order Finch.Config.Euler_explicit in
  let o_rk2 = order Finch.Config.RK2 in
  check_bool
    (Printf.sprintf "euler order ~1 (got %.2f)" o_euler)
    true
    (o_euler > 0.8 && o_euler < 1.2);
  check_bool (Printf.sprintf "rk2 order ~2 (got %.2f)" o_rk2) true
    (o_rk2 > 1.8 && o_rk2 < 2.2);
  let o_rk4 = order Finch.Config.RK4 in
  check_bool (Printf.sprintf "rk4 order ~4 (got %.2f)" o_rk4) true
    (o_rk4 > 3.6 && o_rk4 < 4.4);
  check_bool "rk4 small error" true
    (decay_error Finch.Config.RK4 ~dt:0.1 ~nsteps:10 < 1e-5)

let test_rk2_advection_consistent () =
  (* RK2 on the advection problem stays close to Euler at small dt and is
     stable *)
  let p1, mesh, _ = make_advection ~nsteps:20 () in
  Finch.Problem.time_stepper p1 Finch.Config.RK2;
  let o = run_with (Finch.Config.Cpu Finch.Config.Serial) p1 in
  let mass = Fvm.Field.integral o.Finch.Solve.u mesh 0 in
  check_bool "rk2 stable mass" true (mass > 0. && mass < 1.);
  Fvm.Field.iter o.Finch.Solve.u (fun _ _ v ->
      check_bool "rk2 bounded" true (Float.abs v < 2.))

let prop_upwind_maximum_principle =
  (* property: pure upwind advection (no decay, closed box) with a
     CFL-satisfying dt keeps the solution inside the initial bounds, for
     random initial fields and velocities *)
  QCheck.Test.make ~name:"upwind advection obeys the maximum principle"
    ~count:15
    QCheck.(triple (int_range 0 1000) (float_range (-1.) 1.) (float_range (-1.) 1.))
    (fun (seed, cx, cy) ->
      let p = Finch.Problem.init "maxp" in
      Finch.Problem.domain p 2;
      let mesh = Fvm.Mesh_gen.rectangle ~nx:8 ~ny:8 ~lx:1.0 ~ly:1.0 () in
      Finch.Problem.set_mesh p mesh;
      Finch.Problem.set_steps p ~dt:0.02 ~nsteps:15;
      let u = Finch.Problem.variable p ~name:"u" () in
      let _ = Finch.Problem.coefficient p ~name:"cx" (Finch.Entity.Const cx) in
      let _ = Finch.Problem.coefficient p ~name:"cy" (Finch.Entity.Const cy) in
      let rnd = Tutil.lcg (seed + 1) in
      let values = Array.init 64 (fun _ -> rnd ()) in
      Finch.Problem.initial p u
        (Finch.Problem.Init_fn
           (fun pos _ ->
             let i = int_of_float (pos.(0) *. 8.) in
             let j = int_of_float (pos.(1) *. 8.) in
             values.((min 7 j * 8) + min 7 i)));
      (* ghost = interior: outflow-only boundaries *)
      List.iter
        (fun r -> Finch.Problem.boundary p u r Finch.Config.Dirichlet "u")
        [ 1; 2; 3; 4 ];
      let _ = Finch.Problem.conservation_form p u "-surface(upwind([cx;cy], u))" in
      let o = Finch.Solve.solve p in
      let lo = Array.fold_left Float.min infinity values in
      let hi = Array.fold_left Float.max neg_infinity values in
      let ok = ref true in
      Fvm.Field.iter o.Finch.Solve.u (fun _ _ v ->
          if v < lo -. 1e-9 || v > hi +. 1e-9 then ok := false);
      !ok)

let test_point_implicit_stability () =
  (* du/dt = -k u with dt*k = 50: explicit Euler oscillates/diverges, the
     point-implicit update u' = u/(1 + dt k) is unconditionally stable *)
  let run stepper =
    let p = Finch.Problem.init "stiff" in
    Finch.Problem.domain p 2;
    Finch.Problem.set_mesh p (Fvm.Mesh_gen.rectangle ~nx:2 ~ny:2 ~lx:1. ~ly:1. ());
    Finch.Problem.set_steps p ~dt:50.0 ~nsteps:10;
    Finch.Problem.time_stepper p stepper;
    let u = Finch.Problem.variable p ~name:"u" () in
    let _ = Finch.Problem.coefficient p ~name:"k" (Finch.Entity.Const 1.0) in
    Finch.Problem.initial p u (Finch.Problem.Init_const 1.0);
    let _ = Finch.Problem.conservation_form p u "-k*u" in
    let o = Finch.Solve.solve p in
    Fvm.Field.get o.Finch.Solve.u 0 0
  in
  let explicit = run Finch.Config.Euler_explicit in
  let implicit = run Finch.Config.Euler_point_implicit in
  check_bool "explicit diverges" true (Float.abs explicit > 1e10);
  check_bool "implicit decays monotonically" true
    (implicit > 0. && implicit < 1e-10)

let test_point_implicit_accuracy () =
  (* first-order accurate on the smooth problem *)
  let e1 = decay_error Finch.Config.Euler_point_implicit ~dt:0.1 ~nsteps:10 in
  let e2 = decay_error Finch.Config.Euler_point_implicit ~dt:0.05 ~nsteps:20 in
  let order = log (e1 /. e2) /. log 2. in
  check_bool (Printf.sprintf "PI order ~1 (got %.2f)" order) true
    (order > 0.8 && order < 1.2)

let test_point_implicit_rejects_nonlinear () =
  let eq =
    Finch.Transform.conservation_form
      (Finch.Entity.variable ~name:"u" ())
      "-k*u^2"
  in
  match Finch.Transform.rvol_linearization eq with
  | exception Finch.Transform.Equation_error _ -> ()
  | _ -> Alcotest.fail "nonlinear volume term must be rejected"

let test_linearization_of_bte_form () =
  let d = Finch.Entity.index ~name:"d" ~range:(1, 4) in
  let b = Finch.Entity.index ~name:"b" ~range:(1, 3) in
  let vi = Finch.Entity.variable ~name:"I" ~indices:[ d; b ] () in
  let eq =
    Finch.Transform.conservation_form vi
      "(Io[b] - I[d,b]) * beta[b] - surface(vg[b] * upwind([Sx[d];Sy[d]], I[d,b]))"
  in
  let lin = Finch.Transform.rvol_linearization eq in
  (* -d/dI [(Io - I) beta] = beta *)
  check_bool "linearization is beta[b]" true
    (Finch_symbolic.Expr.equal lin
       (Finch_symbolic.Expr.ref_ "beta" [ Finch_symbolic.Expr.Ivar "b" ]))

let suite =
  ( "solver",
    [
      Alcotest.test_case "serial physics" `Quick test_serial_physics;
      Alcotest.test_case "component independence" `Quick test_component_independence;
      Alcotest.test_case "band-parallel == serial" `Quick test_band_parallel_equals_serial;
      Alcotest.test_case "cell-parallel == serial" `Quick test_cell_parallel_equals_serial;
      Alcotest.test_case "overlap == sync (exact)" `Quick test_overlap_equals_sync;
      Alcotest.test_case "overlap == serial" `Quick test_overlap_equals_serial;
      Alcotest.test_case "gpu == serial" `Quick test_gpu_equals_serial;
      Alcotest.test_case "gpu overlap == sync (exact)" `Quick
        test_gpu_overlap_equals_sync;
      Alcotest.test_case "threaded == serial" `Quick test_threaded_equals_serial;
      Alcotest.test_case "pool-threaded == serial (exact)" `Quick
        test_pool_threaded_equals_serial;
      Alcotest.test_case "hybrid == serial (exact)" `Quick test_hybrid_equals_serial;
      Alcotest.test_case "pool == respawn executor" `Quick
        test_pool_respawn_executors_agree;
      Alcotest.test_case "tape mode == closure mode" `Quick
        test_tape_mode_equals_closure_mode;
      Alcotest.test_case "loop order invariance" `Quick test_loop_order_invariance;
      Alcotest.test_case "assembly loops validation" `Quick test_assembly_loops_validation;
      Alcotest.test_case "dirichlet inflow steady state" `Quick test_dirichlet_inflow;
      Alcotest.test_case "zero-flux closed box conserves mass" `Quick
        test_flux_bc_expression;
      Alcotest.test_case "post-step callback runs" `Quick test_post_step_callback_runs;
      Alcotest.test_case "band gather completeness" `Quick test_rcb_band_gather;
      Alcotest.test_case "RK convergence orders" `Quick test_rk_convergence_order;
      Alcotest.test_case "RK2 advection stability" `Quick test_rk2_advection_consistent;
      Alcotest.test_case "point-implicit unconditional stability" `Quick
        test_point_implicit_stability;
      Alcotest.test_case "point-implicit accuracy" `Quick test_point_implicit_accuracy;
      Alcotest.test_case "point-implicit rejects nonlinear sources" `Quick
        test_point_implicit_rejects_nonlinear;
      Alcotest.test_case "BTE source linearization" `Quick
        test_linearization_of_bte_form;
      QCheck_alcotest.to_alcotest prop_upwind_maximum_principle;
    ] )
