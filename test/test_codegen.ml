(* Native codegen tests: generated-kernel runs must be bit-identical to
   the closure interpreter across the scenario x backend x opt-level
   matrix (including the odd-nsteps fused step-pair schedule), the
   compile cache must hit on identical programs and miss across opt
   levels, and every fallback path must still produce correct results. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* install once for the whole binary; only engages when eval = Native *)
let cache_root =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "finch_cg_test_%d" (Unix.getpid ()))

let () =
  Finch_codegen.Codegen.set_cache_dir cache_root;
  Finch_codegen.Codegen.install ~post_io:Bte.Setup.post_io ()

let tiny =
  {
    Bte.Setup.small_hotspot with
    Bte.Setup.nx = 10;
    ny = 10;
    lx = 2e-6;
    ly = 2e-6;
    ndirs = 4;
    n_la_bands = 4;
    hot_radius = 0.6e-6;
    hot_center = 1e-6;
    nsteps = 12;
  }

(* odd nsteps: the fused step-pair schedule runs its classic-shaped tail *)
let tiny_corner =
  {
    Bte.Setup.small_corner with
    Bte.Setup.nx = 8;
    ny = 8;
    ndirs = 4;
    n_la_bands = 3;
    nsteps = 9;
  }

let solve_at ?(corner = false) ~eval level target overlap =
  let built =
    if corner then Bte.Setup.build_corner tiny_corner
    else Bte.Setup.build tiny
  in
  let p = built.Bte.Setup.problem in
  Finch.Problem.set_target p target;
  Finch.Problem.set_overlap p overlap;
  Finch.Problem.set_opt_level p level;
  Finch.Problem.set_eval_mode p eval;
  Finch.Solve.solve ~band_index:"b" ~post_io:Bte.Setup.post_io p

let field_diff o1 o2 name =
  Fvm.Field.max_abs_diff (Finch.Solve.field o1 name) (Finch.Solve.field o2 name)

let check_identical ?corner label level target overlap =
  let oc = solve_at ?corner ~eval:Finch.Config.Closure level target overlap in
  let on = solve_at ?corner ~eval:Finch.Config.Native level target overlap in
  let d = field_diff oc on "I" in
  if d > 0. then Alcotest.failf "%s: native vs closure I diff %g" label d;
  let dt = field_diff oc on "T" in
  if dt > 0. then Alcotest.failf "%s: native vs closure T diff %g" label dt

(* ------------------------------------------------------------------ *)
(* Cache behaviour.  Runs FIRST so the in-process memo is cold.        *)
(* ------------------------------------------------------------------ *)

let counters () =
  ( Prt.Metrics.value (Prt.Metrics.counter "codegen.cache_hits"),
    Prt.Metrics.value (Prt.Metrics.counter "codegen.cache_misses") )

let test_cache_hit_and_miss () =
  Prt.Metrics.enable ();
  Prt.Metrics.reset_all ();
  let serial = Finch.Config.Cpu Finch.Config.Serial in
  let _ = solve_at ~eval:Finch.Config.Native Finch.Config.O0 serial false in
  let h1, m1 = counters () in
  check_int "first build of the program is a miss" 1 m1;
  check_int "no hits yet" 0 h1;
  check_bool "compile time was recorded" true
    (Prt.Metrics.value (Prt.Metrics.counter "codegen.compile_ns") > 0);
  let _ = solve_at ~eval:Finch.Config.Native Finch.Config.O0 serial false in
  let h2, m2 = counters () in
  check_int "identical program is a cache hit" 1 h2;
  check_int "no recompilation" 1 m2;
  let _ = solve_at ~eval:Finch.Config.Native Finch.Config.O2 serial false in
  let _, m3 = counters () in
  check_int "differing opt level is a miss" 2 m3;
  Prt.Metrics.reset_all ();
  Prt.Metrics.disable ()

let test_disk_cache_survives_memo_flush () =
  (* a second solver process would start with an empty memo but a warm
     disk cache; simulate by loading the persisted kernel directly *)
  let kernels =
    Sys.readdir cache_root |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".cmxs")
  in
  check_bool "compiled kernels persisted on disk" true
    (List.length kernels >= 2)

(* ------------------------------------------------------------------ *)
(* Bit-identity matrix.                                                *)
(* ------------------------------------------------------------------ *)

let gpu1 = Finch.Config.Gpu { spec = Gpu_sim.Spec.a6000; devices = 1; ranks = 1 }

let matrix =
  [ "serial", Finch.Config.Cpu Finch.Config.Serial, false;
    "threads:3", Finch.Config.Cpu (Finch.Config.Threaded 3), false;
    "bands:2", Finch.Config.Cpu (Finch.Config.Band_parallel 2), false;
    "cells:2", Finch.Config.Cpu (Finch.Config.Cell_parallel 2), false;
    "cells:2+overlap", Finch.Config.Cpu (Finch.Config.Cell_parallel 2), true;
    "hybrid:2x2", Finch.Config.Cpu (Finch.Config.Hybrid (2, 2)), false;
    "gpu", gpu1, false ]

let test_native_matches_closure_hotspot () =
  List.iter
    (fun (label, target, overlap) ->
      List.iter
        (fun (lname, level) ->
          check_identical (label ^ " " ^ lname) level target overlap)
        [ "opt0", Finch.Config.O0; "opt2", Finch.Config.O2 ])
    matrix

let test_native_matches_closure_corner_odd_steps () =
  (* odd nsteps exercises the fused step-pair schedule plus its tail *)
  List.iter
    (fun (label, target, overlap) ->
      List.iter
        (fun (lname, level) ->
          check_identical ~corner:true
            ("corner " ^ label ^ " " ^ lname)
            level target overlap)
        [ "opt1", Finch.Config.O1; "opt2", Finch.Config.O2 ])
    [ "serial", Finch.Config.Cpu Finch.Config.Serial, false;
      "threads:3", Finch.Config.Cpu (Finch.Config.Threaded 3), false;
      "gpu", gpu1, false ]

let test_native_matches_reference () =
  (* same oracle the closure solver is held to: the hand-written
     reference trajectory *)
  let o =
    solve_at ~eval:Finch.Config.Native Finch.Config.O0
      (Finch.Config.Cpu Finch.Config.Serial) false
  in
  let r = Bte.Reference.create (Bte.Setup.build tiny).Bte.Setup.scenario in
  Bte.Reference.run r ~nsteps:tiny.Bte.Setup.nsteps;
  let fi = Finch.Solve.field o "I" in
  let max_i = ref 0. in
  for cell = 0 to Fvm.Field.ncells fi - 1 do
    for comp = 0 to Fvm.Field.ncomp fi - 1 do
      let a = Fvm.Field.get fi cell comp in
      let b = Bte.Reference.intensity r ~cell ~comp in
      max_i := Float.max !max_i (Float.abs (a -. b) /. (1e-30 +. Float.abs b))
    done
  done;
  if !max_i > 1e-10 then Alcotest.failf "native vs reference: rel %g" !max_i

(* ------------------------------------------------------------------ *)
(* Fallback paths.                                                     *)
(* ------------------------------------------------------------------ *)

let test_sanitize_falls_back_and_stays_correct () =
  (* generated sweeps bypass poison instrumentation, so sanitized runs
     must take the interpreter path -- and still produce the same
     trajectory *)
  let serial = Finch.Config.Cpu Finch.Config.Serial in
  let oc = solve_at ~eval:Finch.Config.Closure Finch.Config.O0 serial false in
  Fvm.Field.set_sanitize true;
  let on =
    Fun.protect
      ~finally:(fun () -> Fvm.Field.set_sanitize false)
      (fun () ->
        solve_at ~eval:Finch.Config.Native Finch.Config.O0 serial false)
  in
  let d = field_diff oc on "I" in
  if d > 0. then Alcotest.failf "sanitized fallback: I diff %g" d

let suite =
  ( "codegen",
    [ Alcotest.test_case "cache hit and miss" `Quick test_cache_hit_and_miss;
      Alcotest.test_case "kernels persisted on disk" `Quick
        test_disk_cache_survives_memo_flush;
      Alcotest.test_case "native = closure (hotspot matrix)" `Slow
        test_native_matches_closure_hotspot;
      Alcotest.test_case "native = closure (corner, odd nsteps)" `Slow
        test_native_matches_closure_corner_odd_steps;
      Alcotest.test_case "native matches reference solver" `Quick
        test_native_matches_reference;
      Alcotest.test_case "sanitize falls back to interpreter" `Quick
        test_sanitize_falls_back_and_stays_correct ] )
