(* IR construction and source-emission tests beyond the pipeline suite:
   structural properties of the generated program graphs for each target
   and strategy. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let problem ~strategy =
  let p = Finch.Problem.init "ir" in
  Finch.Problem.domain p 2;
  Finch.Problem.set_mesh p (Fvm.Mesh_gen.rectangle ~nx:4 ~ny:4 ~lx:1. ~ly:1. ());
  Finch.Problem.set_steps p ~dt:1e-3 ~nsteps:3;
  Finch.Problem.set_target p (Finch.Config.Cpu strategy);
  let d = Finch.Problem.index p ~name:"d" ~range:(1, 4) in
  let u = Finch.Problem.variable p ~name:"u" ~indices:[ d ] () in
  let _ = Finch.Problem.coefficient p ~name:"k" (Finch.Entity.Const 1.) in
  let _ =
    Finch.Problem.coefficient p ~name:"cx" ~index:d
      (Finch.Entity.Arr [| 1.; -1.; 0.; 0. |])
  in
  let _ =
    Finch.Problem.coefficient p ~name:"cy" ~index:d
      (Finch.Entity.Arr [| 0.; 0.; 1.; -1. |])
  in
  Finch.Problem.initial p u (Finch.Problem.Init_const 1.);
  Finch.Problem.post_step_function p (fun _ -> ());
  let _ =
    Finch.Problem.conservation_form p u
      "-k*u[d] - surface(upwind([cx[d];cy[d]], u[d]))"
  in
  p

let count pred tree =
  Finch.Ir.fold (fun acc n -> if pred n then acc + 1 else acc) 0 tree

let test_band_strategy_nodes () =
  let ir = Finch.Ir.build_cpu (problem ~strategy:(Finch.Config.Band_parallel 2)) in
  check_int "one allreduce" 1
    (count (function Finch.Ir.Allreduce _ -> true | _ -> false) ir);
  check_int "no halo exchange" 0
    (count (function Finch.Ir.Halo_exchange _ -> true | _ -> false) ir)

let test_cell_strategy_nodes () =
  let ir = Finch.Ir.build_cpu (problem ~strategy:(Finch.Config.Cell_parallel 4)) in
  check_int "one halo exchange" 1
    (count (function Finch.Ir.Halo_exchange _ -> true | _ -> false) ir);
  check_int "no allreduce" 0
    (count (function Finch.Ir.Allreduce _ -> true | _ -> false) ir)

let test_serial_strategy_nodes () =
  let ir = Finch.Ir.build_cpu (problem ~strategy:Finch.Config.Serial) in
  check_int "no communication nodes" 0
    (count
       (function
         | Finch.Ir.Allreduce _ | Finch.Ir.Halo_exchange _ -> true | _ -> false)
       ir);
  (* a post-step callback node is present since one is registered *)
  check_int "post-step callback" 1
    (count (function Finch.Ir.Callback { which = `Post; _ } -> true | _ -> false) ir)

let test_gpu_program_order () =
  let p = problem ~strategy:Finch.Config.Serial in
  Finch.Problem.use_cuda p;
  let transfers = [ "u", true; "k", false ] in
  let ir = Finch.Ir.build_gpu p ~transfers in
  check_int "one kernel" 1
    (count (function Finch.Ir.Kernel _ -> true | _ -> false) ir);
  check_int "one sync" 1
    (count (function Finch.Ir.Stream_sync -> true | _ -> false) ir);
  (* the CUDA emission orders operations per Fig. 6: launch, boundary,
     sync, download, combine, post-step, upload *)
  let src = Finch.Emit_source.to_cuda ir in
  let pos marker =
    match String.index_opt src marker.[0] with
    | _ ->
      let rec find i =
        if i + String.length marker > String.length src then -1
        else if String.sub src i (String.length marker) = marker then i
        else find (i + 1)
      in
      find 0
  in
  let launch = pos "<<<" in
  let boundary = pos "compute_boundary_contribution" in
  let sync = pos "cudaStreamSynchronize" in
  let post = pos "post_step_function" in
  check_bool "launch before boundary" true (launch >= 0 && launch < boundary);
  check_bool "boundary before sync" true (boundary < sync);
  check_bool "sync before post-step" true (sync < post)

let test_loop_order_in_ir () =
  let p = problem ~strategy:Finch.Config.Serial in
  Finch.Problem.assembly_loops p [ "d"; "elements" ];
  let ir = Finch.Ir.build_cpu p in
  (* the outermost dof loop is over the index d *)
  let found = ref false in
  ignore
    (Finch.Ir.fold
       (fun seen n ->
         (match n with
          | Finch.Ir.Loop { range = Finch.Ir.Index "d"; body; _ } when not seen ->
            (* it must contain the cell loop *)
            List.iter
              (fun child ->
                match child with
                | Finch.Ir.Loop { range = Finch.Ir.Cells; _ } -> found := true
                | _ -> ())
              body
          | _ -> ());
         seen)
       false ir);
  check_bool "index loop wraps cell loop" true !found

let test_flops_annotation () =
  let p = problem ~strategy:Finch.Config.Serial in
  let ir = Finch.Ir.build_cpu p in
  let flops =
    Finch.Ir.fold
      (fun acc n ->
        match n with
        | Finch.Ir.Flux_update { note; _ } -> acc +. note.Finch.Ir.m_flops
        | _ -> acc)
      0. ir
  in
  check_bool "cost annotation present" true (flops > 5.)

(* Exhaustive access-footprint audit: one assertion per IR constructor,
   checking Ir.reads/Ir.writes against the documented conventions
   (communication and copy nodes touch their whole var list; callbacks
   are opaque; structural nodes are transparent). *)
let test_reads_writes_per_constructor () =
  let open Finch.Ir in
  let module E = Finch_symbolic.Expr in
  let check_sl = Alcotest.(check (list string)) in
  let rw what n er ew =
    check_sl (what ^ " reads") er (reads n);
    check_sl (what ^ " writes") ew (writes n)
  in
  let m = meta () in
  rw "comment" (Comment "c") [] [];
  rw "assign"
    (Assign
       { dest = "a"; dest_new = false;
         expr = E.add [ E.ref_ "b" []; E.ref_ "c" [] ];
         reduce = `Set; note = m })
    [ "b"; "c" ] [ "a" ];
  rw "flux_update"
    (Flux_update
       { var = "u"; rvol = E.ref_ "k" [];
         rsurf = E.ref_ ~side:E.Cell2 "u" []; note = m })
    [ "k"; "u" ] [ "u" ];
  rw "boundary_cpu" (Boundary_cpu { var = "u"; note = m }) [ "u" ] [ "u" ];
  rw "callback (opaque)" (Callback { which = `Post; note = m }) [] [];
  rw "swap_buffers" (Swap_buffers "u") [ "u" ] [ "u" ];
  rw "halo_exchange"
    (Halo_exchange { vars = [ "u"; "v" ]; note = m })
    [ "u"; "v" ] [ "u"; "v" ];
  rw "allreduce"
    (Allreduce { what = "sum"; vars = [ "t" ]; note = m })
    [ "t" ] [ "t" ];
  rw "allreduce (multi-var)"
    (Allreduce { what = "sum"; vars = [ "t"; "q" ]; note = m })
    [ "q"; "t" ] [ "q"; "t" ];
  rw "d2d" (D2d { vars = [ "u"; "v" ]; note = m }) [ "u"; "v" ] [ "u"; "v" ];
  rw "h2d" (H2d { vars = [ "u"; "k" ]; every_step = false })
    [ "k"; "u" ] [ "k"; "u" ];
  rw "d2h" (D2h { vars = [ "u" ]; every_step = true }) [ "u" ] [ "u" ];
  rw "stream_sync" Stream_sync [] [];
  rw "advance_time" Advance_time [] [];
  let inner =
    Assign
      { dest = "a"; dest_new = false; expr = E.ref_ "b" []; reduce = `Set;
        note = m }
  in
  rw "seq (union)" (Seq [ inner; Swap_buffers "u" ]) [ "b"; "u" ] [ "a"; "u" ];
  rw "loop (transparent)"
    (Loop { range = Cells; body = [ inner ]; parallel = true })
    [ "b" ] [ "a" ];
  rw "kernel (transparent)"
    (Kernel { kname = "k0"; body = [ inner ]; note = m })
    [ "b" ] [ "a" ]

let suite =
  ( "ir",
    [
      Alcotest.test_case "band strategy nodes" `Quick test_band_strategy_nodes;
      Alcotest.test_case "cell strategy nodes" `Quick test_cell_strategy_nodes;
      Alcotest.test_case "serial strategy nodes" `Quick test_serial_strategy_nodes;
      Alcotest.test_case "gpu program order (Fig. 6)" `Quick test_gpu_program_order;
      Alcotest.test_case "assembly loop order in IR" `Quick test_loop_order_in_ir;
      Alcotest.test_case "flop annotations" `Quick test_flops_annotation;
      Alcotest.test_case "reads/writes per constructor" `Quick
        test_reads_writes_per_constructor;
    ] )
